//! Memory-layout planning and operand pre-processing.
//!
//! The planner assigns simulated-memory regions to the operand arrays
//! and materialises the two *derived index arrays* that the paper's
//! offline format conversion produces from `col_idx`:
//!
//! * for Algorithm 2, each slot stores the **byte offset of the selected
//!   B row** (`global_row * b_row_stride`), so the kernel only adds the
//!   tile-adjusted base (`vadd.vx`, paper Algorithm 2 line 5) and the
//!   per-nonzero `vmv.x.s` yields a complete load address;
//! * for Algorithm 3, each slot stores the **vector-register number**
//!   holding that B row within the pre-loaded tile
//!   (`tile_vreg_base + local_row`), so the per-nonzero `vmv.x.s`
//!   yields exactly the `rs` operand of `vindexmac.vx`.
//!
//! B and C rows are padded to a whole number of vector lengths so every
//! column tile is full-width; both kernels see identical padding.

use crate::error::KernelError;
use indexmac_isa::Sew;
use indexmac_mem::MainMemory;
use indexmac_sparse::{quant, DenseMatrix, ElemType, IntMatrix, NmPattern, StructuredSparseMatrix};
use indexmac_vpu::{AnalysisContract, OffsetTable, SimConfig, VregTable};

/// The logical GEMM shape `C[rows x cols] = A[rows x inner] * B[inner x cols]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmDims {
    /// Rows of A and C.
    pub rows: usize,
    /// Columns of A / rows of B (`K`).
    pub inner: usize,
    /// Columns of B and C.
    pub cols: usize,
}

impl GemmDims {
    /// Multiply-accumulate count of the dense product.
    pub fn dense_macs(&self) -> u64 {
        self.rows as u64 * self.inner as u64 * self.cols as u64
    }
}

/// Architectural registers available to the resident B tile: `v0..v11`
/// are reserved for accumulators/metadata/scratch (see the bank table
/// in `emit.rs`), and the planner keeps the same headroom under
/// grouping, where the tile occupies `tile_rows * lmul` registers.
const TILE_REG_BUDGET: usize = 20;

/// First simulated address handed out to operand arrays.
const REGION_BASE: u64 = 0x0010_0000;
/// Region alignment (one simulated page).
const REGION_ALIGN: u64 = 0x1000;

/// A planned operand placement for one sparse x dense product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmLayout {
    /// Logical GEMM shape.
    pub dims: GemmDims,
    /// The N:M pattern of A.
    pub pattern: NmPattern,
    /// B-tile rows kept resident per k-step (`L`, multiple of `M`).
    pub tile_rows: usize,
    /// Element precision of the A and B operands (the C accumulator is
    /// always 32 bits: `f32` or the widening-MAC `i32`).
    pub elem: ElemType,
    /// Hardware vector length in elements at the operand SEW (per
    /// single register): `VLEN / SEW`, so 64 at e8 for a 512-bit VLEN.
    pub vl: usize,
    /// Register grouping factor (`LMUL ∈ {1, 2, 4}`). With `lmul > 1`
    /// every B row segment, C accumulator and column tile is
    /// `lmul * vl` elements wide, held in groups of `lmul` consecutive
    /// vector registers; only the second-generation `indexmac2` kernel
    /// consumes such layouts.
    pub lmul: usize,
    /// `ceil(inner / L)` — number of k-tiles.
    pub num_ktiles: usize,
    /// Metadata slots per (row, k-tile): `N * L / M`.
    pub slots_per_tile: usize,
    /// `ceil(cols / VL)` — number of column tiles.
    pub num_coltiles: usize,
    /// First vector register of the resident B tile (`32 - L`).
    pub tile_vreg_base: u8,
    /// Base address of the `values` array.
    pub values_base: u64,
    /// Base address of the Algorithm 2 index array (B-row byte offsets).
    pub colidx_offsets_base: u64,
    /// Base address of the Algorithm 3 index array (VRF register numbers).
    pub colidx_vregs_base: u64,
    /// Base address of the dense A array (Algorithm 1 baseline).
    pub a_dense_base: u64,
    /// Base address of B (row-major, padded row stride).
    pub b_base: u64,
    /// Base address of C (row-major, padded row stride).
    pub c_base: u64,
    /// Padded B row stride in bytes
    /// (`num_coltiles * coltile_width * elem.bytes()`).
    pub row_stride_bytes: u64,
    /// Padded C row stride in bytes — C elements are always 4 bytes
    /// (f32 or the widening i32 accumulator), so at e8/e16 this exceeds
    /// the B stride by the widening factor.
    pub c_row_stride_bytes: u64,
    /// Padded A (dense) row stride in bytes (`ceil(inner/VL)*VL*4`,
    /// f32 path only).
    pub a_row_stride_bytes: u64,
}

impl GemmLayout {
    /// Plans a layout for `a * B` where B has `b_cols` columns.
    ///
    /// `tile_rows` is the paper's `L` (the evaluation uses `L = 16`).
    ///
    /// # Errors
    ///
    /// * [`KernelError::BadTileRows`] if `L` is not a positive multiple
    ///   of `M`, exceeds the paper's bound `M * VL / N`, or leaves fewer
    ///   than 12 architectural registers for accumulators and metadata;
    /// * [`KernelError::TooManySlotsPerTile`] if `N * L / M > VL` (the
    ///   slide walk could not keep a tile's metadata in one register).
    pub fn plan(
        a: &StructuredSparseMatrix,
        b_cols: usize,
        cfg: &SimConfig,
        tile_rows: usize,
    ) -> Result<Self, KernelError> {
        Self::plan_grouped(a, b_cols, cfg, tile_rows, 1)
    }

    /// Plans a layout with register grouping: column tiles (and thus B
    /// row segments and C accumulators) are `lmul * VL` elements wide,
    /// and each resident B row occupies a group of `lmul` consecutive
    /// vector registers. `lmul = 1` is exactly [`GemmLayout::plan`].
    ///
    /// # Errors
    ///
    /// The [`GemmLayout::plan`] conditions, evaluated against the
    /// grouped register budget (`tile_rows * lmul` architectural
    /// registers), plus [`KernelError::BadGrouping`] for `lmul`
    /// outside `{1, 2, 4}`.
    pub fn plan_grouped(
        a: &StructuredSparseMatrix,
        b_cols: usize,
        cfg: &SimConfig,
        tile_rows: usize,
        lmul: usize,
    ) -> Result<Self, KernelError> {
        Self::plan_elem(a, b_cols, cfg, tile_rows, lmul, ElemType::F32)
    }

    /// Plans a layout at an explicit element precision: at
    /// [`ElemType::I8`]/[`ElemType::I16`] the column tiles are
    /// `VLEN/SEW` elements wide per register (64 at e8 on Table I),
    /// operand arrays pack down to the element width, and the C
    /// accumulator stays 32-bit (`i32`). `ElemType::F32` with `lmul = 1`
    /// is exactly [`GemmLayout::plan`].
    ///
    /// # Errors
    ///
    /// The [`GemmLayout::plan_grouped`] conditions, plus
    /// [`KernelError::BadGrouping`] when `lmul * (32/SEW) > 4` — the
    /// widening accumulator group would exceed the largest modelled
    /// register grouping (`m4`), so e8 runs ungrouped and e16 supports
    /// at most `m2`.
    pub fn plan_elem(
        a: &StructuredSparseMatrix,
        b_cols: usize,
        cfg: &SimConfig,
        tile_rows: usize,
        lmul: usize,
        elem: ElemType,
    ) -> Result<Self, KernelError> {
        let pattern = a.pattern();
        let vl = cfg.vlen_bits / elem.bits();
        let (rows, inner) = a.shape();

        if !matches!(lmul, 1 | 2 | 4) {
            return Err(KernelError::BadGrouping {
                lmul,
                reason: "register grouping must be 1, 2 or 4",
            });
        }
        if lmul * elem.widen() > 4 {
            return Err(KernelError::BadGrouping {
                lmul,
                reason: "the widening accumulator group (lmul * 32/SEW) exceeds m4",
            });
        }
        if tile_rows == 0 || !tile_rows.is_multiple_of(pattern.m()) {
            return Err(KernelError::BadTileRows {
                tile_rows,
                reason: "must be a positive multiple of the block size M",
            });
        }
        if tile_rows > pattern.max_preload_rows(vl) {
            return Err(KernelError::BadTileRows {
                tile_rows,
                reason: "exceeds the addressable bound M*VL/N (paper Section III)",
            });
        }
        if tile_rows * lmul > TILE_REG_BUDGET {
            return Err(KernelError::BadTileRows {
                tile_rows,
                reason: "leaves too few vector registers for accumulators",
            });
        }
        let slots_per_tile = pattern.n() * tile_rows / pattern.m();
        if slots_per_tile > vl {
            return Err(KernelError::TooManySlotsPerTile {
                slots: slots_per_tile,
                vl,
            });
        }

        let coltile_width = vl * lmul;
        let num_ktiles = inner.div_ceil(tile_rows);
        let num_coltiles = b_cols.div_ceil(coltile_width);
        let eb = elem.bytes();
        let row_stride_bytes = (num_coltiles * coltile_width * eb) as u64;
        let c_row_stride_bytes = (num_coltiles * coltile_width * 4) as u64;
        let a_row_stride_bytes = (inner.div_ceil(vl) * vl * 4) as u64;

        // Bump allocator over the simulated address space.
        let mut cursor = REGION_BASE;
        let mut alloc = |bytes: u64| {
            let base = cursor;
            cursor = (cursor + bytes + REGION_ALIGN - 1) & !(REGION_ALIGN - 1);
            base
        };
        // The metadata arrays carry one extra register's worth of slots:
        // the kernels load tile metadata at the full hardware VL (only
        // `slots_per_tile` lanes are consumed), so the last tile's load
        // must stay inside its own array for the analyzer's table
        // contracts to cover every lane it touches.
        let meta_slots = (rows * num_ktiles * slots_per_tile) as u64 + vl as u64;
        let values_base = alloc(meta_slots * eb as u64);
        let colidx_offsets_base = alloc(meta_slots * 4);
        let colidx_vregs_base = alloc(meta_slots * eb as u64);
        let a_dense_base = alloc(rows as u64 * a_row_stride_bytes);
        let b_base = alloc(inner as u64 * row_stride_bytes);
        let c_base = alloc(rows as u64 * c_row_stride_bytes);

        Ok(Self {
            dims: GemmDims {
                rows,
                inner,
                cols: b_cols,
            },
            pattern,
            tile_rows,
            elem,
            vl,
            lmul,
            num_ktiles,
            slots_per_tile,
            num_coltiles,
            tile_vreg_base: (32 - tile_rows * lmul) as u8,
            values_base,
            colidx_offsets_base,
            colidx_vregs_base,
            a_dense_base,
            b_base,
            c_base,
            row_stride_bytes,
            c_row_stride_bytes,
            a_row_stride_bytes,
        })
    }

    /// The RVV element width the kernels select for this layout.
    pub fn sew(&self) -> Sew {
        match self.elem {
            ElemType::F32 => Sew::E32,
            ElemType::I16 => Sew::E16,
            ElemType::I8 => Sew::E8,
        }
    }

    /// Column-tile width in elements (`VL * LMUL`).
    pub fn coltile_width(&self) -> usize {
        self.vl * self.lmul
    }

    /// The largest tile-row count `L` that fits the register budget
    /// under `lmul` grouping while staying a multiple of the pattern's
    /// block size `M`: grouped experiments shrink the requested `L`
    /// rather than erroring out (e.g. `L=16` becomes 8 under `m2` and 4
    /// under `m4`).
    pub fn fit_tile_rows(requested: usize, lmul: usize, pattern: NmPattern) -> usize {
        let m = pattern.m();
        let cap = (TILE_REG_BUDGET / lmul.max(1)).max(m);
        let fitted = requested.min(cap) / m * m;
        fitted.max(m)
    }

    /// Address of the `values` slots for `(row, ktile)` — packed at the
    /// element width.
    pub fn values_addr(&self, row: usize, ktile: usize) -> u64 {
        self.values_base
            + ((row * self.num_ktiles + ktile) * self.slots_per_tile * self.elem.bytes()) as u64
    }

    /// Address of the Algorithm 2 index slots for `(row, ktile)` — byte
    /// offsets of B rows, always 32-bit (the f32 baseline's format).
    pub fn colidx_offsets_addr(&self, row: usize, ktile: usize) -> u64 {
        self.colidx_offsets_base
            + ((row * self.num_ktiles + ktile) * self.slots_per_tile * 4) as u64
    }

    /// Address of the Algorithm 3 index slots for `(row, ktile)` —
    /// VRF register numbers, packed at the element width so the kernel
    /// loads them with the same-width `vle`.
    pub fn colidx_vregs_addr(&self, row: usize, ktile: usize) -> u64 {
        self.colidx_vregs_base
            + ((row * self.num_ktiles + ktile) * self.slots_per_tile * self.elem.bytes()) as u64
    }

    /// Address of element `(k, col)` of B (element-width packing).
    pub fn b_addr(&self, k: usize, col: usize) -> u64 {
        self.b_base + k as u64 * self.row_stride_bytes + (col * self.elem.bytes()) as u64
    }

    /// Address of element `(row, col)` of C (always 4-byte elements).
    pub fn c_addr(&self, row: usize, col: usize) -> u64 {
        self.c_base + row as u64 * self.c_row_stride_bytes + (col * 4) as u64
    }

    /// Address of element `(row, k)` of the dense copy of A.
    pub fn a_dense_addr(&self, row: usize, k: usize) -> u64 {
        self.a_dense_base + row as u64 * self.a_row_stride_bytes + (k * 4) as u64
    }

    /// Stride in bytes between `(row, ktile)` and `(row+1, ktile)`
    /// metadata slots (element-width packing).
    pub fn meta_row_stride_bytes(&self) -> u64 {
        (self.num_ktiles * self.slots_per_tile * self.elem.bytes()) as u64
    }

    /// Stride in bytes between `(row, ktile)` and `(row, ktile+1)`
    /// metadata slots (element-width packing).
    pub fn meta_ktile_stride_bytes(&self) -> u64 {
        (self.slots_per_tile * self.elem.bytes()) as u64
    }

    /// Total metadata slots across all `(row, k-tile)` pairs, including
    /// the trailing full-register pad the planner allocates.
    fn padded_meta_slots(&self) -> u64 {
        (self.dims.rows * self.num_ktiles * self.slots_per_tile + self.vl) as u64
    }

    /// The memory facts the static analyzer needs to reason about this
    /// layout's programs: readable/writable extents, the architectural
    /// zero page, and the two derived-index table contracts (see
    /// [`indexmac_vpu::analyze`]). The analyzer *trusts* these;
    /// [`GemmLayout::write_operands`] is what makes them true.
    pub fn analysis_contract(&self) -> AnalysisContract {
        let padded = self.padded_meta_slots();
        let c_end = self.c_base + self.dims.rows as u64 * self.c_row_stride_bytes;
        // Offsets may name any of the `num_ktiles * tile_rows` logical B
        // rows, including k-padding rows past `inner`; reads there land
        // in the zeroed gap between B's allocation and C.
        let b_reach =
            self.b_base + (self.num_ktiles * self.tile_rows) as u64 * self.row_stride_bytes;
        AnalysisContract {
            readable: self.values_base..c_end.max(b_reach),
            writable: self.c_base..c_end,
            zero_page: REGION_ALIGN,
            offset_table: Some(OffsetTable {
                region: self.colidx_offsets_base..self.colidx_offsets_base + padded * 4,
                stride: self.row_stride_bytes,
                count: (self.num_ktiles * self.tile_rows) as u64,
            }),
            vreg_table: Some(VregTable {
                region: self.colidx_vregs_base
                    ..self.colidx_vregs_base + padded * self.elem.bytes() as u64,
                elem: self.sew(),
                min: self.tile_vreg_base,
                max: 32 - self.lmul as u8,
            }),
        }
    }

    /// Writes every operand array into simulated memory: `values`, both
    /// derived index arrays, a dense copy of A, B, and a zeroed C.
    ///
    /// # Panics
    ///
    /// Panics if `a`/`b` do not match the planned shape (planner misuse).
    pub fn write_operands(
        &self,
        a: &StructuredSparseMatrix,
        b: &DenseMatrix,
        mem: &mut MainMemory,
    ) {
        assert_eq!(
            a.shape(),
            (self.dims.rows, self.dims.inner),
            "A shape changed"
        );
        assert_eq!(
            b.shape(),
            (self.dims.inner, self.dims.cols),
            "B shape changed"
        );
        let m = self.pattern.m();
        let n = self.pattern.n();
        let blocks_per_tile = self.tile_rows / m;
        let real_blocks = a.blocks_per_row();

        for row in 0..self.dims.rows {
            for kt in 0..self.num_ktiles {
                let mut values = vec![0.0_f32; self.slots_per_tile];
                let mut offsets = vec![0_u32; self.slots_per_tile];
                let mut vregs = vec![0_u32; self.slots_per_tile];
                for bl in 0..blocks_per_tile {
                    let global_block = kt * blocks_per_tile + bl;
                    for s in 0..n {
                        let slot = bl * n + s;
                        let (value, in_block) = if global_block < real_blocks {
                            let blk = a.block(row, global_block);
                            (blk.values[s], blk.indices[s] as usize)
                        } else {
                            (0.0, 0) // k-tile padding beyond A's last block
                        };
                        let local_row = bl * m + in_block;
                        let global_row = global_block * m + in_block;
                        values[slot] = value;
                        offsets[slot] = (global_row as u64 * self.row_stride_bytes) as u32;
                        // Under grouping each resident B row is a group
                        // of `lmul` registers; the index names its base.
                        vregs[slot] = self.tile_vreg_base as u32 + (local_row * self.lmul) as u32;
                    }
                }
                self.write_elem_slice(mem, self.values_addr(row, kt), &values);
                mem.write_u32_slice(self.colidx_offsets_addr(row, kt), &offsets);
                for (i, vreg) in vregs.iter().enumerate() {
                    let addr = self.colidx_vregs_addr(row, kt) + (i * self.elem.bytes()) as u64;
                    match self.elem {
                        ElemType::F32 => mem.write_u32(addr, *vreg),
                        ElemType::I16 => mem.write_u16(addr, *vreg as u16),
                        ElemType::I8 => mem.write_u8(addr, *vreg as u8),
                    }
                }
            }
        }

        // Pad lanes past the final metadata slot: values and offsets
        // stay zero (a zero offset names B row 0, which always exists),
        // but vreg indices must still name a register inside the
        // resident tile so every lane of a full-VL metadata load is a
        // well-formed `vindexmac` operand.
        let real_slots = self.dims.rows * self.num_ktiles * self.slots_per_tile;
        for i in 0..self.vl {
            let addr = self.colidx_vregs_base + ((real_slots + i) * self.elem.bytes()) as u64;
            match self.elem {
                ElemType::F32 => mem.write_u32(addr, self.tile_vreg_base as u32),
                ElemType::I16 => mem.write_u16(addr, self.tile_vreg_base as u16),
                ElemType::I8 => mem.write_u8(addr, self.tile_vreg_base),
            }
        }

        // Dense copy of A (Algorithm 1 baseline) — f32 path only; the
        // quantized paths run the sparse kernels.
        if self.elem == ElemType::F32 {
            let a_dense = a.to_dense();
            for row in 0..self.dims.rows {
                mem.write_f32_slice(self.a_dense_addr(row, 0), a_dense.row(row));
            }
        }

        // B, padded row stride (padding bytes left zero), packed at the
        // element width.
        for k in 0..self.dims.inner {
            self.write_elem_slice(mem, self.b_addr(k, 0), b.row(k));
        }

        // C zeroed (paper Algorithm 3 reloads/updates C per tile);
        // 4-byte accumulator elements at every precision.
        let zero_row = vec![0.0_f32; (self.c_row_stride_bytes / 4) as usize];
        for row in 0..self.dims.rows {
            mem.write_f32_slice(
                self.c_base + row as u64 * self.c_row_stride_bytes,
                &zero_row,
            );
        }
    }

    /// Writes a slice of operand values at the layout's element width:
    /// raw f32 bits at f32, two's-complement `i8`/`i16` at the
    /// quantized precisions (the values are exact small integers by
    /// construction — see [`indexmac_sparse::quant`]).
    fn write_elem_slice(&self, mem: &mut MainMemory, addr: u64, values: &[f32]) {
        match self.elem {
            ElemType::F32 => mem.write_f32_slice(addr, values),
            ElemType::I16 => {
                for (i, v) in values.iter().enumerate() {
                    mem.write_u16(addr + (i * 2) as u64, quant::slot_to_i32(*v) as i16 as u16);
                }
            }
            ElemType::I8 => {
                for (i, v) in values.iter().enumerate() {
                    mem.write_u8(addr + i as u64, quant::slot_to_i32(*v) as i8 as u8);
                }
            }
        }
    }

    /// Reads the (unpadded) result matrix C back from simulated memory
    /// as `f32` (the float path's accumulator domain).
    pub fn read_c(&self, mem: &MainMemory) -> DenseMatrix {
        DenseMatrix::from_fn(self.dims.rows, self.dims.cols, |r, c| {
            mem.read_f32(self.c_addr(r, c))
        })
    }

    /// Reads C back as `i32` — the widening-MAC accumulator domain of
    /// the quantized paths, compared bit-exactly against
    /// [`indexmac_sparse::quant::spmm_reference_i32`].
    pub fn read_c_i32(&self, mem: &MainMemory) -> IntMatrix {
        IntMatrix::from_fn(self.dims.rows, self.dims.cols, |r, c| {
            mem.read_u32(self.c_addr(r, c)) as i32
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_sparse::prune;

    fn cfg() -> SimConfig {
        SimConfig::table_i()
    }

    fn layout(rows: usize, inner: usize, cols: usize, pattern: NmPattern) -> GemmLayout {
        let a = prune::random_structured(rows, inner, pattern, 7);
        GemmLayout::plan(&a, cols, &cfg(), 16).unwrap()
    }

    #[test]
    fn plan_geometry() {
        let l = layout(8, 64, 40, NmPattern::P1_4);
        assert_eq!(l.num_ktiles, 4);
        assert_eq!(l.slots_per_tile, 4); // 1 * 16/4
        assert_eq!(l.num_coltiles, 3); // ceil(40/16)
        assert_eq!(l.row_stride_bytes, 3 * 16 * 4);
        assert_eq!(l.tile_vreg_base, 16);
        let l = layout(8, 64, 40, NmPattern::P2_4);
        assert_eq!(l.slots_per_tile, 8); // 2 * 16/4
    }

    #[test]
    fn plan_validates_tile_rows() {
        let a = prune::random_structured(4, 32, NmPattern::P2_4, 1);
        assert!(matches!(
            GemmLayout::plan(&a, 8, &cfg(), 3),
            Err(KernelError::BadTileRows { .. })
        ));
        assert!(matches!(
            GemmLayout::plan(&a, 8, &cfg(), 0),
            Err(KernelError::BadTileRows { .. })
        ));
        // 2:4 bound: M*VL/N = 4*16/2 = 32, but register budget caps at 20.
        assert!(matches!(
            GemmLayout::plan(&a, 8, &cfg(), 24),
            Err(KernelError::BadTileRows { .. })
        ));
        assert!(GemmLayout::plan(&a, 8, &cfg(), 8).is_ok());
    }

    #[test]
    fn plan_rejects_beyond_preload_bound() {
        // 1:16 pattern: M*VL/N = 16*16/1 = 256 ok; but 16:16 -> bound 16.
        let p = NmPattern::new(16, 16).unwrap();
        let a = prune::random_structured(2, 32, p, 1);
        // L=16 gives slots 16*16/16 = 16 <= VL, bound = 16 ok.
        assert!(GemmLayout::plan(&a, 8, &cfg(), 16).is_ok());
        // 8:8 -> L=16 exceeds bound M*VL/N = 8*16/8 = 16? equal, ok; slots = 16.
        let p = NmPattern::new(8, 8).unwrap();
        let a = prune::random_structured(2, 32, p, 1);
        assert!(GemmLayout::plan(&a, 16, &cfg(), 16).is_ok());
    }

    #[test]
    fn grouped_plan_geometry() {
        let a = prune::random_structured(8, 64, NmPattern::P1_4, 7);
        let l = GemmLayout::plan_grouped(&a, 40, &cfg(), 8, 2).unwrap();
        assert_eq!(l.lmul, 2);
        assert_eq!(l.coltile_width(), 32);
        assert_eq!(l.num_coltiles, 2); // ceil(40 / 32)
        assert_eq!(l.row_stride_bytes, 2 * 32 * 4);
        assert_eq!(l.tile_vreg_base, 16); // 32 - 8*2
                                          // lmul = 1 keeps plan() semantics exactly.
        let m1 = GemmLayout::plan_grouped(&a, 40, &cfg(), 16, 1).unwrap();
        assert_eq!(m1, GemmLayout::plan(&a, 40, &cfg(), 16).unwrap());
    }

    #[test]
    fn grouped_plan_validates() {
        let a = prune::random_structured(4, 32, NmPattern::P2_4, 1);
        assert!(matches!(
            GemmLayout::plan_grouped(&a, 8, &cfg(), 16, 3),
            Err(KernelError::BadGrouping { lmul: 3, .. })
        ));
        // 16 rows * m2 = 32 architectural registers: over budget.
        assert!(matches!(
            GemmLayout::plan_grouped(&a, 8, &cfg(), 16, 2),
            Err(KernelError::BadTileRows { .. })
        ));
        assert!(GemmLayout::plan_grouped(&a, 8, &cfg(), 8, 2).is_ok());
        assert!(GemmLayout::plan_grouped(&a, 8, &cfg(), 4, 4).is_ok());
    }

    #[test]
    fn grouped_vreg_metadata_names_group_bases() {
        let a = prune::random_structured(3, 16, NmPattern::P1_4, 9);
        let b = DenseMatrix::random(16, 16, 10);
        let l = GemmLayout::plan_grouped(&a, 16, &cfg(), 8, 2).unwrap();
        let mut mem = MainMemory::new();
        l.write_operands(&a, &b, &mut mem);
        for row in 0..3 {
            for kt in 0..l.num_ktiles {
                for slot in 0..l.slots_per_tile {
                    let vreg = mem.read_u32(l.colidx_vregs_addr(row, kt) + slot as u64 * 4);
                    assert!(vreg >= l.tile_vreg_base as u32);
                    assert!(vreg < 32);
                    // Group bases are lmul-aligned within the tile.
                    assert_eq!((vreg - l.tile_vreg_base as u32) % 2, 0);
                }
            }
        }
    }

    #[test]
    fn fit_tile_rows_shrinks_with_grouping() {
        assert_eq!(GemmLayout::fit_tile_rows(16, 1, NmPattern::P1_4), 16);
        assert_eq!(GemmLayout::fit_tile_rows(16, 2, NmPattern::P1_4), 8);
        assert_eq!(GemmLayout::fit_tile_rows(16, 4, NmPattern::P1_4), 4);
        assert_eq!(GemmLayout::fit_tile_rows(16, 2, NmPattern::P1_2), 10);
        // Never below one block.
        assert_eq!(GemmLayout::fit_tile_rows(2, 4, NmPattern::P1_4), 4);
        // Fitted values always plan cleanly at their grouping.
        for lmul in [1usize, 2, 4] {
            let fitted = GemmLayout::fit_tile_rows(16, lmul, NmPattern::P2_4);
            let a = prune::random_structured(4, 32, NmPattern::P2_4, 1);
            assert!(
                GemmLayout::plan_grouped(&a, 8, &cfg(), fitted, lmul).is_ok(),
                "lmul {lmul} fitted {fitted}"
            );
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout(16, 128, 100, NmPattern::P2_4);
        let meta = (16 * l.num_ktiles * l.slots_per_tile * 4) as u64;
        assert!(l.values_base + meta <= l.colidx_offsets_base);
        assert!(l.colidx_offsets_base + meta <= l.colidx_vregs_base);
        assert!(l.colidx_vregs_base + meta <= l.a_dense_base);
        assert!(l.a_dense_base + 16 * l.a_row_stride_bytes <= l.b_base);
        assert!(l.b_base + 128 * l.row_stride_bytes <= l.c_base);
    }

    #[test]
    fn derived_indices_match_format() {
        let a = prune::random_structured(3, 32, NmPattern::P1_4, 9);
        let b = DenseMatrix::random(32, 16, 10);
        let l = GemmLayout::plan(&a, 16, &cfg(), 16).unwrap();
        let mut mem = MainMemory::new();
        l.write_operands(&a, &b, &mut mem);

        for row in 0..3 {
            for kt in 0..l.num_ktiles {
                for slot in 0..l.slots_per_tile {
                    let v = mem.read_f32(l.values_addr(row, kt) + slot as u64 * 4);
                    let off = mem.read_u32(l.colidx_offsets_addr(row, kt) + slot as u64 * 4);
                    let vreg = mem.read_u32(l.colidx_vregs_addr(row, kt) + slot as u64 * 4);
                    // Offsets address a valid row of B.
                    assert_eq!(off as u64 % l.row_stride_bytes, 0);
                    let g = off as u64 / l.row_stride_bytes;
                    assert!((g as usize) < l.num_ktiles * l.tile_rows);
                    // Vreg within the resident tile.
                    assert!((16..32).contains(&vreg));
                    // Non-padding slots match the structured matrix.
                    if v != 0.0 {
                        let block = g as usize / 4;
                        let in_block = g as usize % 4;
                        let blk = a.block(row, block);
                        assert!(blk
                            .values
                            .iter()
                            .zip(blk.indices.iter())
                            .any(|(bv, bi)| *bv == v && *bi as usize == in_block));
                        // Local row consistent between the two encodings.
                        assert_eq!(
                            vreg as u64 - 16,
                            g % l.tile_rows as u64,
                            "vreg and offset must denote the same tile row"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn analysis_contract_covers_padded_tables() {
        let a = prune::random_structured(3, 16, NmPattern::P1_4, 9);
        let b = DenseMatrix::random(16, 16, 10);
        let l = GemmLayout::plan(&a, 16, &cfg(), 16).unwrap();
        let mut mem = MainMemory::new();
        l.write_operands(&a, &b, &mut mem);
        let c = l.analysis_contract();
        let ot = c.offset_table.as_ref().unwrap();
        let vt = c.vreg_table.as_ref().unwrap();
        // Every metadata slot plus one full register of pad lies inside
        // its table region, and the stored values honour the contract.
        let slots = 3 * l.num_ktiles * l.slots_per_tile;
        for i in 0..slots + l.vl {
            let off_addr = l.colidx_offsets_base + i as u64 * 4;
            let vreg_addr = l.colidx_vregs_base + (i * l.elem.bytes()) as u64;
            assert!(ot.region.contains(&off_addr));
            assert!(vt.region.contains(&vreg_addr));
            let off = mem.read_u32(off_addr) as u64;
            assert_eq!(off % ot.stride, 0);
            assert!(off / ot.stride < ot.count);
            let vreg = mem.read_u32(vreg_addr);
            assert!((vt.min as u32..=vt.max as u32).contains(&vreg));
        }
        // Stores stay inside C; readable spans operands through C.
        assert_eq!(c.writable, l.c_base..l.c_base + 3 * l.c_row_stride_bytes);
        assert!(c.readable.start <= l.values_base);
        assert!(c.readable.end >= c.writable.end);
    }

    #[test]
    fn write_and_read_back_c() {
        let a = prune::random_structured(4, 16, NmPattern::P1_4, 3);
        let b = DenseMatrix::random(16, 10, 4);
        let l = GemmLayout::plan(&a, 10, &cfg(), 16).unwrap();
        let mut mem = MainMemory::new();
        l.write_operands(&a, &b, &mut mem);
        // C starts zeroed.
        assert!(l.read_c(&mem).as_slice().iter().all(|v| *v == 0.0));
        // B round-trips.
        for k in 0..16 {
            assert_eq!(mem.read_f32_slice(l.b_addr(k, 0), 10), b.row(k));
        }
        // Dense A copy round-trips.
        let ad = a.to_dense();
        for r in 0..4 {
            assert_eq!(mem.read_f32_slice(l.a_dense_addr(r, 0), 16), ad.row(r));
        }
    }

    #[test]
    fn ragged_inner_dimension_pads_cleanly() {
        // inner=20 with L=16 -> 2 k-tiles, second mostly padding.
        let a = prune::random_structured(2, 20, NmPattern::P1_4, 5);
        let b = DenseMatrix::random(20, 8, 6);
        let l = GemmLayout::plan(&a, 8, &cfg(), 16).unwrap();
        assert_eq!(l.num_ktiles, 2);
        let mut mem = MainMemory::new();
        l.write_operands(&a, &b, &mut mem);
        // Padding slots in the second tile have zero values.
        let vals = mem.read_f32_slice(l.values_addr(0, 1), l.slots_per_tile);
        let real_blocks_in_tile2 = 5usize.saturating_sub(4); // blocks 4.. of 5
        assert!(vals[real_blocks_in_tile2..].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn dense_mac_count() {
        let d = GemmDims {
            rows: 3,
            inner: 4,
            cols: 5,
        };
        assert_eq!(d.dense_macs(), 60);
    }

    #[test]
    fn elem_plan_geometry_scales_with_sew() {
        use indexmac_sparse::ElemType;
        let a = prune::random_structured(8, 64, NmPattern::P1_4, 7);
        let e8 = GemmLayout::plan_elem(&a, 128, &cfg(), 16, 1, ElemType::I8).unwrap();
        assert_eq!(e8.vl, 64, "VLEN/8 elements per register");
        assert_eq!(e8.sew(), indexmac_isa::Sew::E8);
        assert_eq!(e8.num_coltiles, 2); // ceil(128/64)
        assert_eq!(e8.row_stride_bytes, 2 * 64); // 1 byte per element
        assert_eq!(e8.c_row_stride_bytes, 2 * 64 * 4); // i32 accumulator
        let e16 = GemmLayout::plan_elem(&a, 128, &cfg(), 16, 1, ElemType::I16).unwrap();
        assert_eq!(e16.vl, 32);
        assert_eq!(e16.num_coltiles, 4);
        assert_eq!(e16.row_stride_bytes, 4 * 32 * 2);
        // f32 plan_elem == plan_grouped == plan.
        let f = GemmLayout::plan_elem(&a, 128, &cfg(), 16, 1, ElemType::F32).unwrap();
        assert_eq!(f, GemmLayout::plan(&a, 128, &cfg(), 16).unwrap());
        assert_eq!(f.c_row_stride_bytes, f.row_stride_bytes);
    }

    #[test]
    fn elem_plan_rejects_overwide_accumulator_groups() {
        use indexmac_sparse::ElemType;
        let a = prune::random_structured(4, 32, NmPattern::P1_4, 1);
        // e8 widens 4×: any grouping beyond m1 overflows m4.
        assert!(matches!(
            GemmLayout::plan_elem(&a, 64, &cfg(), 8, 2, ElemType::I8),
            Err(KernelError::BadGrouping { .. })
        ));
        // e16 widens 2×: m2 is the limit.
        assert!(GemmLayout::plan_elem(&a, 64, &cfg(), 8, 2, ElemType::I16).is_ok());
        assert!(matches!(
            GemmLayout::plan_elem(&a, 64, &cfg(), 4, 4, ElemType::I16),
            Err(KernelError::BadGrouping { .. })
        ));
        // f32 keeps the full m4 range.
        assert!(GemmLayout::plan_elem(&a, 64, &cfg(), 4, 4, ElemType::F32).is_ok());
    }

    #[test]
    fn quantized_operands_pack_to_element_width() {
        use indexmac_sparse::{quant, ElemType};
        let a = quant::random_structured_int(3, 16, NmPattern::P1_4, 9, ElemType::I8);
        let b = quant::random_dense_int(16, 64, 10, ElemType::I8);
        let l = GemmLayout::plan_elem(&a, 64, &cfg(), 8, 1, ElemType::I8).unwrap();
        let mut mem = MainMemory::new();
        l.write_operands(&a, &b, &mut mem);
        // B rows round-trip through 1-byte elements.
        for k in 0..16 {
            for c in 0..64 {
                assert_eq!(
                    mem.read_u8(l.b_addr(k, c)) as i8 as i32,
                    quant::slot_to_i32(b.get(k, c)),
                    "B[{k},{c}]"
                );
            }
        }
        // Metadata packs to 1 byte per slot: values are i8, vregs fit u8.
        assert_eq!(l.meta_ktile_stride_bytes(), l.slots_per_tile as u64);
        for slot in 0..l.slots_per_tile {
            let vreg = mem.read_u8(l.colidx_vregs_addr(0, 0) + slot as u64);
            assert!((l.tile_vreg_base..32).contains(&vreg));
        }
        // C starts zeroed in the i32 domain.
        assert!(l.read_c_i32(&mem).as_slice().iter().all(|v| *v == 0));
    }
}
