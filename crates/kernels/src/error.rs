//! Error type for kernel planning and generation.

use std::error::Error;
use std::fmt;

/// Errors from layout planning or kernel building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The B-tile row count `L` is invalid for the pattern/machine.
    BadTileRows {
        /// Requested tile rows.
        tile_rows: usize,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The fixed-shape slot count per tile exceeds the vector length, so
    /// the slide-based walk cannot keep all slots in one register.
    TooManySlotsPerTile {
        /// Slots per (row, k-tile): `N * L / M`.
        slots: usize,
        /// Hardware vector length in elements.
        vl: usize,
    },
    /// Unroll factor incompatible with the register budget.
    BadUnroll {
        /// Requested unroll.
        unroll: usize,
        /// Maximum supported for this kernel/layout.
        max: usize,
    },
    /// A and B dimensions do not agree.
    DimensionMismatch {
        /// `A.cols()`.
        a_cols: usize,
        /// `B.rows()`.
        b_rows: usize,
    },
    /// Invalid register grouping (LMUL) for the layout or kernel.
    BadGrouping {
        /// Requested grouping factor.
        lmul: usize,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The kernel has no emission path at the layout's element
    /// precision (only the `vindexmac` kernels support i8/i16).
    UnsupportedPrecision {
        /// The layout's element precision, as displayed.
        elem: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadTileRows { tile_rows, reason } => {
                write!(f, "invalid B-tile rows L={tile_rows}: {reason}")
            }
            KernelError::TooManySlotsPerTile { slots, vl } => {
                write!(
                    f,
                    "{slots} metadata slots per tile exceed the vector length {vl}"
                )
            }
            KernelError::BadUnroll { unroll, max } => {
                write!(
                    f,
                    "unroll factor {unroll} exceeds the register budget (max {max})"
                )
            }
            KernelError::DimensionMismatch { a_cols, b_rows } => {
                write!(f, "A has {a_cols} columns but B has {b_rows} rows")
            }
            KernelError::BadGrouping { lmul, reason } => {
                write!(f, "invalid register grouping LMUL={lmul}: {reason}")
            }
            KernelError::UnsupportedPrecision { elem, reason } => {
                write!(f, "unsupported element precision {elem}: {reason}")
            }
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        for e in [
            KernelError::BadTileRows {
                tile_rows: 3,
                reason: "not a multiple of M",
            },
            KernelError::TooManySlotsPerTile { slots: 32, vl: 16 },
            KernelError::BadUnroll { unroll: 8, max: 4 },
            KernelError::DimensionMismatch {
                a_cols: 8,
                b_rows: 9,
            },
            KernelError::BadGrouping {
                lmul: 3,
                reason: "not a power of two",
            },
            KernelError::UnsupportedPrecision {
                elem: "i8",
                reason: "f32-only kernel",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
