//! The **second-generation** proposed kernel: `vindexmac.vvi` with the
//! column index consumed directly from the vector register file (after
//! *Optimizing Structured-Sparse Matrix Multiplication in RISC-V Vector
//! Processors*, arXiv 2501.10189).
//!
//! Algorithm 3 still pays, per non-zero, one cross-domain move plus two
//! slides to walk the metadata to element 0:
//!
//! ```text
//! vmv.x.s      t, v_colidx            # engine -> scalar core -> engine
//! vindexmac.vx v_c, v_values, t
//! vslide1down  v_values
//! vslide1down  v_colidx
//! ```
//!
//! `vindexmac.vvi` reads element `slot` of both metadata registers *in
//! place*, so the steady-state inner loop collapses to a single
//! instruction per non-zero with no scalar-core involvement at all:
//!
//! ```text
//! vindexmac.vvi v_c, v_values, v_colidx, slot
//! ```
//!
//! Because the scalar core no longer sits on the critical path, the
//! engine streams MACs back to back, and the freed scratch registers
//! allow **register grouping**: with `LMUL = lmul`, column tiles are
//! `lmul * VL` elements wide, each resident B row occupies a group of
//! `lmul` registers, and the per-(row, k-tile) metadata reload is paid
//! `lmul`× less often. The `ablate_grouping` bench quantifies the
//! effect.
//!
//! # Register allocation (unroll `u`, grouping `g`)
//!
//! | registers                  | role                               |
//! |----------------------------|------------------------------------|
//! | `v0, v{g}, .., v{(u-1)g}`  | C accumulator groups               |
//! | `v{ug} .. v{ug+u-1}`       | `values` metadata (single regs)    |
//! | `v{ug+u} .. v{ug+2u-1}`    | `col_idx` metadata (single regs)   |
//! | `v{32-Lg} .. v31`          | resident B tile (`L` groups)       |
//!
//! For `g = 1`, `u = 4` this is exactly the Algorithm 3 bank layout
//! (`v0..v3` C, `v4..v7` values, `v8..v11` col_idx, `v16..v31` tile).

use crate::emit::{
    c_addr_xreg, emit_loop_step, emit_vload_abs_sew, emit_vsetvli_sew, finish, vload_instr,
    ADDR_SCRATCH, CTR_COLTILES, CTR_KTILES, CTR_NNZ, CTR_ROWS, MAX_UNROLL, ROW_STRIDE,
};
use crate::error::KernelError;
use crate::layout::GemmLayout;
use crate::KernelParams;
use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, Sew, VReg};

/// C accumulator group base of unrolled row `r` under an accumulator
/// group of `acc` registers (`lmul` at f32; `lmul * 32/SEW` at the
/// widening integer precisions). Delegates to the shared packed-bank
/// geometry in [`crate::emit`].
pub fn c_group_vreg(r: usize, acc: usize) -> VReg {
    crate::emit::c_bank_vreg(r, acc)
}

/// `values` metadata register of unrolled row `r` (`acc` as in
/// [`c_group_vreg`]).
pub fn values_vreg2(r: usize, unroll: usize, acc: usize) -> VReg {
    crate::emit::values_bank_vreg(r, unroll, acc)
}

/// `col_idx` metadata register of unrolled row `r` (`acc` as in
/// [`c_group_vreg`]).
pub fn colidx_vreg2(r: usize, unroll: usize, acc: usize) -> VReg {
    crate::emit::colidx_bank_vreg(r, unroll, acc)
}

/// Registers per C-accumulator group for this layout: the data-side
/// grouping times the widening factor of the precision.
pub fn acc_group_regs(layout: &GemmLayout) -> usize {
    layout.lmul * layout.elem.widen()
}

/// Largest unroll factor whose accumulator groups and metadata
/// registers fit below the resident tile for this layout.
pub fn max_unroll(layout: &GemmLayout) -> usize {
    let base = layout.tile_vreg_base as usize;
    (base / (acc_group_regs(layout) + 2)).min(MAX_UNROLL)
}

/// Builds the second-generation `vindexmac.vvi` kernel for `layout`.
///
/// `params.dataflow` is ignored: like Algorithm 3, the kernel is
/// inherently B-stationary (that is what makes the tile pinnable).
/// Layouts planned with [`GemmLayout::plan_grouped`] and `lmul > 1`
/// produce the register-grouped variant.
///
/// # Errors
///
/// Returns [`KernelError::BadUnroll`] when `params.unroll` is zero or
/// its accumulator groups and metadata registers would collide with the
/// resident B tile (see [`max_unroll`]).
pub fn build(layout: &GemmLayout, params: &KernelParams) -> Result<Program, KernelError> {
    let lmul = layout.lmul;
    let unroll = params.unroll;
    if unroll == 0 || unroll > max_unroll(layout) {
        return Err(KernelError::BadUnroll {
            unroll,
            max: max_unroll(layout),
        });
    }
    let sew = layout.sew();
    let acc = acc_group_regs(layout);
    let grouping = Lmul::from_factor(lmul).expect("layout planning validated lmul");
    // The C accumulator runs at e32 under `lmul * widen` grouping — the
    // planner guarantees the product stays within m4.
    let acc_grouping = Lmul::from_factor(acc).expect("planner bounded lmul * widen to 4");
    let width = layout.coltile_width();
    let widened = layout.elem.widen() > 1;

    let mut b = ProgramBuilder::new();
    b.comment("prologue: grouped vl at the operand SEW, row stride constant");
    emit_vsetvli_sew(&mut b, width, sew, grouping);
    b.li(ROW_STRIDE, layout.row_stride_bytes as i64);

    let groups: Vec<(usize, usize)> = (0..layout.dims.rows.div_ceil(unroll))
        .map(|g| {
            let row0 = g * unroll;
            (row0, unroll.min(layout.dims.rows - row0))
        })
        .collect();

    b.li(CTR_KTILES, layout.num_ktiles as i64);
    for kt in 0..layout.num_ktiles {
        b.li(CTR_COLTILES, layout.num_coltiles as i64);
        for ct in 0..layout.num_coltiles {
            emit_tile_preload(&mut b, layout, kt, ct);
            b.li(CTR_ROWS, groups.len() as i64);
            for &(row0, u_eff) in &groups {
                // Metadata rows are one register wide: drop to m1 for
                // their loads when the data side is grouped.
                if lmul > 1 {
                    emit_vsetvli_sew(&mut b, layout.vl, sew, Lmul::M1);
                }
                for r in 0..u_eff {
                    let row = row0 + r;
                    b.li(c_addr_xreg(r), layout.c_addr(row, ct * width) as i64);
                    emit_vload_abs_sew(
                        &mut b,
                        values_vreg2(r, unroll, acc),
                        layout.values_addr(row, kt),
                        sew,
                    );
                    emit_vload_abs_sew(
                        &mut b,
                        colidx_vreg2(r, unroll, acc),
                        layout.colidx_vregs_addr(row, kt),
                        sew,
                    );
                }
                // The accumulator loads run at e32: under f32 data
                // grouping that is the data vtype itself (`e32,m{lmul}`,
                // restored after the m1 metadata loads); at the
                // quantized widths the widened group needs its own
                // `e32,m{lmul * 32/SEW}` window.
                if widened {
                    emit_vsetvli_sew(&mut b, width, Sew::E32, acc_grouping);
                } else if lmul > 1 {
                    emit_vsetvli_sew(&mut b, width, sew, grouping);
                }
                for r in 0..u_eff {
                    b.push(Instruction::Vle32 {
                        vd: c_group_vreg(r, acc),
                        rs1: c_addr_xreg(r),
                    });
                }
                if widened {
                    emit_vsetvli_sew(&mut b, width, sew, grouping);
                }
                // Steady state: ONE instruction per non-zero slot — no
                // vmv.x.s, no slides (paper follow-up's key claim).
                b.li(CTR_NNZ, layout.slots_per_tile as i64);
                for q in 0..layout.slots_per_tile {
                    for r in 0..u_eff {
                        b.push(Instruction::VindexmacVvi {
                            vd: c_group_vreg(r, acc),
                            vs2: values_vreg2(r, unroll, acc),
                            vs1: colidx_vreg2(r, unroll, acc),
                            slot: q as u8,
                        });
                    }
                    emit_loop_step(&mut b, CTR_NNZ);
                }
                if widened {
                    emit_vsetvli_sew(&mut b, width, Sew::E32, acc_grouping);
                }
                for r in 0..u_eff {
                    b.push(Instruction::Vse32 {
                        vs3: c_group_vreg(r, acc),
                        rs1: c_addr_xreg(r),
                    });
                }
                if widened {
                    emit_vsetvli_sew(&mut b, width, sew, grouping);
                }
                emit_loop_step(&mut b, CTR_ROWS);
            }
            emit_loop_step(&mut b, CTR_COLTILES);
        }
        emit_loop_step(&mut b, CTR_KTILES);
    }
    b.halt();
    Ok(finish(b, layout))
}

/// Pre-loads the `L x (lmul*VL)` tile `B[kt*L .., ct*lmul*VL ..]` into
/// the top of the vector register file, one grouped load per row at the
/// operand element width.
fn emit_tile_preload(b: &mut ProgramBuilder, layout: &GemmLayout, kt: usize, ct: usize) {
    b.comment(format!(
        "preload B tile kt={kt} ct={ct} into v{}..v31 (m{})",
        layout.tile_vreg_base, layout.lmul
    ));
    b.li(
        ADDR_SCRATCH,
        layout.b_addr(kt * layout.tile_rows, ct * layout.coltile_width()) as i64,
    );
    for l in 0..layout.tile_rows {
        b.push(vload_instr(
            layout.sew(),
            VReg::new(layout.tile_vreg_base + (l * layout.lmul) as u8),
            ADDR_SCRATCH,
        ));
        if l + 1 < layout.tile_rows {
            b.add(ADDR_SCRATCH, ADDR_SCRATCH, ROW_STRIDE);
        }
    }
}

/// Static count of `vindexmac.vvi` instructions in a program.
pub fn count_indexmacs(program: &Program) -> usize {
    program.count(|i| matches!(i, Instruction::VindexmacVvi { .. }))
}

/// Static count of cross-domain moves and slides — the overhead the
/// second-generation instruction eliminates (zero in the steady state).
pub fn count_walk_overhead(program: &Program) -> usize {
    program.count(|i| {
        matches!(
            i,
            Instruction::VmvXs { .. }
                | Instruction::Vslide1downVx { .. }
                | Instruction::VfmvFs { .. }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexmac;
    use indexmac_sparse::{prune, NmPattern};
    use indexmac_vpu::SimConfig;

    fn layout(pattern: NmPattern) -> GemmLayout {
        let a = prune::random_structured(6, 32, pattern, 11);
        GemmLayout::plan(&a, 20, &SimConfig::table_i(), 16).unwrap()
    }

    #[test]
    fn instruction_counts_match_structure() {
        let l = layout(NmPattern::P1_4);
        let p = build(&l, &KernelParams::default()).unwrap();
        let expected = l.dims.rows * l.slots_per_tile * l.num_ktiles * l.num_coltiles;
        assert_eq!(count_indexmacs(&p), expected);
    }

    #[test]
    fn steady_state_has_no_walk_overhead() {
        let l = layout(NmPattern::P2_4);
        let p = build(&l, &KernelParams::default()).unwrap();
        assert_eq!(count_walk_overhead(&p), 0, "no vmv.x.s / slides anywhere");
        assert_eq!(
            crate::rowwise::count_b_loads(&p),
            0,
            "no per-nonzero B loads"
        );
    }

    #[test]
    fn three_fewer_vector_ops_per_nonzero_than_algorithm_3() {
        let l = layout(NmPattern::P1_4);
        let p2 = build(&l, &KernelParams::default()).unwrap();
        let p1 = indexmac::build(&l, &KernelParams::default()).unwrap();
        let nnz_ops = l.dims.rows * l.slots_per_tile * l.num_ktiles * l.num_coltiles;
        let vec_ops =
            |p: &Program| p.count(|i| i.is_vector() && !matches!(i, Instruction::Vsetvli { .. }));
        // Alg3 per nonzero: vmv.x.s + vindexmac.vx + 2 slides = 4.
        // vvi per nonzero: 1. Everything else is identical at lmul=1.
        assert_eq!(vec_ops(&p1) - vec_ops(&p2), 3 * nnz_ops);
    }

    #[test]
    fn lmul1_register_map_matches_algorithm_3_banks() {
        use crate::emit::{c_vreg, colidx_vreg, values_vreg};
        for r in 0..4 {
            assert_eq!(c_group_vreg(r, 1), c_vreg(r));
            assert_eq!(values_vreg2(r, 4, 1), values_vreg(r));
            assert_eq!(colidx_vreg2(r, 4, 1), colidx_vreg(r));
        }
    }

    #[test]
    fn grouped_build_uses_grouped_vsetvli_and_fewer_coltiles() {
        let a = prune::random_structured(4, 32, NmPattern::P1_4, 3);
        let cfg = SimConfig::table_i();
        let m1 = GemmLayout::plan_grouped(&a, 64, &cfg, 8, 1).unwrap();
        let m2 = GemmLayout::plan_grouped(&a, 64, &cfg, 8, 2).unwrap();
        assert_eq!(m1.num_coltiles, 4);
        assert_eq!(m2.num_coltiles, 2);
        let p = build(
            &m2,
            &KernelParams {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let text = p.to_string();
        assert!(text.contains("e32,m2"), "grouped vsetvli emitted");
        assert!(text.contains("vindexmac.vvi"));
        // Fewer column tiles -> fewer total instructions than ungrouped.
        let p1 = build(
            &m1,
            &KernelParams {
                unroll: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(p.len() < p1.len(), "{} vs {}", p.len(), p1.len());
    }

    #[test]
    fn unroll_budget_shrinks_with_grouping() {
        let a = prune::random_structured(4, 32, NmPattern::P1_4, 3);
        let cfg = SimConfig::table_i();
        let m4 = GemmLayout::plan_grouped(&a, 64, &cfg, 4, 4).unwrap();
        assert_eq!(max_unroll(&m4), 2); // 16 regs of tile, (4+2)*u <= 16
        assert!(build(
            &m4,
            &KernelParams {
                unroll: 2,
                ..Default::default()
            }
        )
        .is_ok());
        assert!(matches!(
            build(
                &m4,
                &KernelParams {
                    unroll: 3,
                    ..Default::default()
                }
            ),
            Err(KernelError::BadUnroll { max: 2, .. })
        ));
    }

    #[test]
    fn rejects_bad_unroll() {
        let l = layout(NmPattern::P1_4);
        assert!(matches!(
            build(
                &l,
                &KernelParams {
                    unroll: 0,
                    ..Default::default()
                }
            ),
            Err(KernelError::BadUnroll { .. })
        ));
        assert!(matches!(
            build(
                &l,
                &KernelParams {
                    unroll: 9,
                    ..Default::default()
                }
            ),
            Err(KernelError::BadUnroll { .. })
        ));
    }
}
