//! Shared emission conventions for the kernel builders.
//!
//! # Register allocation (unroll factor `u <= 4`)
//!
//! | registers        | role                                            |
//! |------------------|-------------------------------------------------|
//! | `v0..v3`         | C-row accumulators (one per unrolled row)       |
//! | `v4..v7`         | `values` walk registers                         |
//! | `v8..v11`        | `col_idx` walk registers                        |
//! | `v12..v15`       | B-row slices (Algorithm 2) / scratch            |
//! | `v(32-L)..v31`   | resident B tile (Algorithm 3)                   |
//! | `a1..a4`         | per-row C addresses                             |
//! | `t0..t3`         | per-row moved index / load address              |
//! | `t4, t5, t6, s6` | loop counters (nonzeros, row groups, col tiles, |
//! |                  | k tiles)                                        |
//! | `a0`             | transient load-address scratch                  |
//! | `s9`             | B/C row stride in bytes                         |
//! | `s5`             | Algorithm 2 adjusted B base per column tile     |
//! | `f0..f3`         | per-row value scalars (`vfmacc.vf` operand)     |
//!
//! Absolute addresses are materialised with `li` (one scalar ALU
//! instruction), standing in for the single pointer-bump `add` of real
//! unrolled code — the dynamic instruction count is identical.
//!
//! Loop control is emitted *per dynamic iteration* (`addi` + `bne` whose
//! taken target is the next instruction), so generated straight-line
//! programs execute the same dynamic stream — including taken-branch
//! redirects — as the equivalent looping code, and loop unrolling
//! amortises a real cost exactly as in the paper.

use crate::error::KernelError;
use crate::layout::GemmLayout;
use indexmac_isa::instr::FReg;
use indexmac_isa::{Instruction, Lmul, Program, ProgramBuilder, Sew, VReg, XReg};

/// Maximum supported unroll factor (the paper evaluates x4).
pub const MAX_UNROLL: usize = 4;

/// C accumulator register of unrolled row `r`.
pub fn c_vreg(r: usize) -> VReg {
    debug_assert!(r < MAX_UNROLL);
    VReg::new(r as u8)
}

/// `values` walk register of unrolled row `r`.
pub fn values_vreg(r: usize) -> VReg {
    debug_assert!(r < MAX_UNROLL);
    VReg::new(4 + r as u8)
}

/// `col_idx` walk register of unrolled row `r`.
pub fn colidx_vreg(r: usize) -> VReg {
    debug_assert!(r < MAX_UNROLL);
    VReg::new(8 + r as u8)
}

/// B-slice register of unrolled row `r` (Algorithm 2 / dense baseline).
pub fn bslice_vreg(r: usize) -> VReg {
    debug_assert!(r < MAX_UNROLL);
    VReg::new(12 + r as u8)
}

/// Scratch scalar register of unrolled row `r` (moved index/address).
pub fn scratch_xreg(r: usize) -> XReg {
    [XReg::T0, XReg::T1, XReg::T2, XReg::T3][r]
}

/// C-address register of unrolled row `r`.
pub fn c_addr_xreg(r: usize) -> XReg {
    [XReg::A1, XReg::A2, XReg::A3, XReg::A4][r]
}

/// Per-row FP scalar for `vfmacc.vf`.
pub fn value_freg(r: usize) -> FReg {
    FReg::new(r as u8)
}

/// Loop-counter register for the innermost (non-zero) loop.
pub const CTR_NNZ: XReg = XReg::T4;
/// Loop-counter register for the row-group loop.
pub const CTR_ROWS: XReg = XReg::T5;
/// Loop-counter register for the column-tile loop.
pub const CTR_COLTILES: XReg = XReg::T6;
/// Loop-counter register for the k-tile loop.
pub const CTR_KTILES: XReg = XReg::S6;
/// Transient address scratch.
pub const ADDR_SCRATCH: XReg = XReg::A0;
/// B/C row stride in bytes.
pub const ROW_STRIDE: XReg = XReg::S9;
/// Algorithm 2: B base adjusted for the current column tile.
pub const B_COLTILE_BASE: XReg = XReg::S5;

/// Emits a `vsetvli` requesting `avl` elements at SEW=32 under `lmul`
/// register grouping (via the scratch register).
pub fn emit_vsetvli(b: &mut ProgramBuilder, avl: usize, lmul: Lmul) {
    emit_vsetvli_sew(b, avl, Sew::E32, lmul);
}

/// Emits a `vsetvli` requesting `avl` elements at an explicit element
/// width under `lmul` register grouping.
pub fn emit_vsetvli_sew(b: &mut ProgramBuilder, avl: usize, sew: Sew, lmul: Lmul) {
    b.li(ADDR_SCRATCH, avl as i64);
    b.push(Instruction::Vsetvli {
        rd: XReg::ZERO,
        rs1: ADDR_SCRATCH,
        sew,
        lmul,
    });
}

/// The unit-stride load instruction matching an element width.
pub fn vload_instr(sew: Sew, vd: VReg, rs1: XReg) -> Instruction {
    match sew {
        Sew::E8 => Instruction::Vle8 { vd, rs1 },
        Sew::E16 => Instruction::Vle16 { vd, rs1 },
        _ => Instruction::Vle32 { vd, rs1 },
    }
}

/// The unit-stride store instruction matching an element width.
pub fn vstore_instr(sew: Sew, vs3: VReg, rs1: XReg) -> Instruction {
    match sew {
        Sew::E8 => Instruction::Vse8 { vs3, rs1 },
        Sew::E16 => Instruction::Vse16 { vs3, rs1 },
        _ => Instruction::Vse32 { vs3, rs1 },
    }
}

/// Emits the one-time prologue: row-stride constant and `vsetvli` to the
/// full hardware vector length.
pub fn emit_prologue(b: &mut ProgramBuilder, vl: usize, row_stride_bytes: u64) {
    b.comment("prologue: vl = VLMAX, row stride constant");
    emit_vsetvli(b, vl, Lmul::M1);
    b.li(ROW_STRIDE, row_stride_bytes as i64);
}

/// Rejects layouts planned with register grouping: only the
/// second-generation [`crate::indexmac2`] kernel understands
/// `LMUL > 1` column tiles; every other builder addresses `VL`-wide
/// tiles and would compute wrong addresses.
pub fn require_ungrouped(layout: &GemmLayout) -> Result<(), KernelError> {
    if layout.lmul != 1 {
        return Err(KernelError::BadGrouping {
            lmul: layout.lmul,
            reason: "this kernel supports only LMUL=1 layouts (use indexmac2 for grouping)",
        });
    }
    Ok(())
}

/// Rejects quantized layouts: the walk-based baselines move values
/// through `f0..f3` and `vfmacc.vf`, which have no integer semantics —
/// only the `vindexmac` kernels own a widening emission path.
pub fn require_f32(layout: &GemmLayout) -> Result<(), KernelError> {
    if layout.elem != indexmac_sparse::ElemType::F32 {
        return Err(KernelError::UnsupportedPrecision {
            elem: match layout.elem {
                indexmac_sparse::ElemType::I8 => "i8",
                indexmac_sparse::ElemType::I16 => "i16",
                indexmac_sparse::ElemType::F32 => unreachable!(),
            },
            reason: "this kernel is f32-only (use indexmac/indexmac2 for quantized runs)",
        });
    }
    Ok(())
}

/// C-accumulator group base of unrolled row `r` when each accumulator
/// spans `acc` consecutive registers (`LMUL` at f32, `LMUL · 32/SEW`
/// with widening): row `r` starts at `v(r·acc)`. This is the single
/// source of the packed bank geometry shared by both `vindexmac`
/// kernel families.
pub fn c_bank_vreg(r: usize, acc: usize) -> VReg {
    debug_assert!(r < MAX_UNROLL);
    VReg::new((r * acc) as u8)
}

/// `values` metadata register of unrolled row `r` in the packed bank
/// layout: the metadata banks start right after the `unroll`
/// accumulator groups.
pub fn values_bank_vreg(r: usize, unroll: usize, acc: usize) -> VReg {
    debug_assert!(r < unroll);
    VReg::new((unroll * acc + r) as u8)
}

/// `col_idx` metadata register of unrolled row `r` in the packed bank
/// layout (see [`values_bank_vreg`]).
pub fn colidx_bank_vreg(r: usize, unroll: usize, acc: usize) -> VReg {
    debug_assert!(r < unroll);
    VReg::new((unroll * acc + unroll + r) as u8)
}

/// C-accumulator register of unrolled row `r` under a widening factor
/// `widen = 32/SEW`. `widen = 1` is the classic [`c_vreg`] bank.
pub fn c_vreg_w(r: usize, widen: usize) -> VReg {
    c_bank_vreg(r, widen)
}

/// `values` metadata register of unrolled row `r` for Algorithm 3's
/// widened layouts. At `widen = 1` this is the classic fixed
/// [`values_vreg`] bank (`v4..v7` regardless of unroll, as the paper's
/// listings pin); widened layouts use the packed bank geometry.
pub fn values_vreg_w(r: usize, unroll: usize, widen: usize) -> VReg {
    if widen == 1 {
        values_vreg(r)
    } else {
        values_bank_vreg(r, unroll, widen)
    }
}

/// `col_idx` metadata register of unrolled row `r` for Algorithm 3's
/// widened layouts (see [`values_vreg_w`]).
pub fn colidx_vreg_w(r: usize, unroll: usize, widen: usize) -> VReg {
    if widen == 1 {
        colidx_vreg(r)
    } else {
        colidx_bank_vreg(r, unroll, widen)
    }
}

/// Finalizes an emitted kernel. In debug and test builds the static
/// analyzer ([`indexmac_vpu::analyze`]) runs over the fresh instruction
/// stream against the layout's memory contract and panics on *any*
/// diagnostic — shipped builders must emit provably fault-free,
/// lint-clean programs. Release builds skip the pass (the CLI `lint`
/// subcommand and CI cover them).
pub fn finish(b: ProgramBuilder, layout: &GemmLayout) -> Program {
    let program = b.build();
    if cfg!(debug_assertions) {
        let vlen_bits = layout.vl * layout.elem.bits();
        let analysis = indexmac_vpu::analyze_instructions(
            program.instructions(),
            vlen_bits,
            Some(&layout.analysis_contract()),
        );
        assert!(
            analysis.diagnostics().is_empty(),
            "kernel builder emitted a program the static analyzer rejects:\n{}",
            analysis
                .diagnostics()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    program
}

/// Emits one dynamic iteration of loop control: decrement `counter` and
/// branch (taken) to the next instruction while it is non-zero. The
/// final iteration's branch falls through, exactly like rolled code.
pub fn emit_loop_step(b: &mut ProgramBuilder, counter: XReg) {
    b.addi(counter, counter, -1);
    let next = b.new_label();
    b.bne(counter, XReg::ZERO, next);
    b.bind(next);
}

/// Emits a `vle32` from an absolute address via the scratch register.
pub fn emit_vload_abs(b: &mut ProgramBuilder, vd: VReg, addr: u64) {
    emit_vload_abs_sew(b, vd, addr, Sew::E32);
}

/// Emits an element-width-matched unit-stride load from an absolute
/// address via the scratch register.
pub fn emit_vload_abs_sew(b: &mut ProgramBuilder, vd: VReg, addr: u64, sew: Sew) {
    b.li(ADDR_SCRATCH, addr as i64);
    b.push(vload_instr(sew, vd, ADDR_SCRATCH));
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_isa::Program;

    #[test]
    fn register_banks_do_not_collide() {
        for r in 0..MAX_UNROLL {
            let regs = [
                c_vreg(r).index(),
                values_vreg(r).index(),
                colidx_vreg(r).index(),
                bslice_vreg(r).index(),
            ];
            for (i, a) in regs.iter().enumerate() {
                for bix in regs.iter().skip(i + 1) {
                    assert_ne!(a, bix);
                }
            }
            assert!(
                regs.iter().all(|x| *x < 16),
                "banks must stay below the tile base"
            );
        }
    }

    #[test]
    fn scratch_and_addr_regs_distinct_from_counters() {
        let counters = [
            CTR_NNZ,
            CTR_ROWS,
            CTR_COLTILES,
            CTR_KTILES,
            ADDR_SCRATCH,
            ROW_STRIDE,
        ];
        for r in 0..MAX_UNROLL {
            assert!(!counters.contains(&scratch_xreg(r)));
            assert!(!counters.contains(&c_addr_xreg(r)));
        }
    }

    fn run_to_end(p: &Program) -> indexmac_vpu::Simulator {
        let mut sim = indexmac_vpu::Simulator::new(indexmac_vpu::SimConfig::table_i());
        sim.run(p).unwrap();
        sim
    }

    #[test]
    fn loop_step_executes_like_a_loop() {
        // Three iterations' worth of loop-control pairs behave like a
        // counted loop: counter ends at zero, branches taken except last.
        let mut b = ProgramBuilder::new();
        b.li(CTR_NNZ, 3);
        for _ in 0..3 {
            emit_loop_step(&mut b, CTR_NNZ);
        }
        b.halt();
        let sim = run_to_end(&b.build());
        assert_eq!(sim.state().x(CTR_NNZ), 0);
    }

    #[test]
    fn prologue_sets_vl() {
        let mut b = ProgramBuilder::new();
        emit_prologue(&mut b, 16, 256);
        b.halt();
        let sim = run_to_end(&b.build());
        assert_eq!(sim.state().vl(), 16);
        assert_eq!(sim.state().x(ROW_STRIDE), 256);
    }
}
