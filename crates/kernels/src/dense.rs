//! **Algorithm 1** — dense row-wise vectorized matrix multiplication.
//!
//! The formulation the paper starts from: every element of a row of A is
//! broadcast against the matching row of B (paper lines 5–8):
//!
//! ```text
//! vfmv.f.s   f, v_a          # s0 = A[i,e]                 (line 6)
//! vle32.v    v_b, (addr)     # load row e of B             (line 5)
//! vfmacc.vf  v_c, f, v_b     # C[i,:] += s0 * B[e,:]       (line 7)
//! vslide1down v_a            # A[i,:] >>= 1                (line 8)
//! ```
//!
//! Because the B row is shared by all unrolled output rows, it is loaded
//! once per inner step (unlike the sparse baseline, where each row of A
//! selects a different row of B). This kernel exists as the dense
//! reference point: it executes `M/N` times more MACs than the sparse
//! kernels on an N:M-pruned matrix.

use crate::emit::{
    bslice_vreg, c_addr_xreg, c_vreg, emit_loop_step, emit_prologue, emit_vload_abs, finish,
    require_f32, require_ungrouped, value_freg, values_vreg, ADDR_SCRATCH, CTR_COLTILES,
    CTR_KTILES, CTR_NNZ, CTR_ROWS, MAX_UNROLL,
};
use crate::error::KernelError;
use crate::layout::GemmLayout;
use crate::KernelParams;
use indexmac_isa::{Instruction, Program, ProgramBuilder, XReg};

/// Builds the dense row-wise kernel for `layout` (A treated as dense).
///
/// # Errors
///
/// Returns [`KernelError::BadUnroll`] when `params.unroll` is outside
/// `1..=4`.
pub fn build(layout: &GemmLayout, params: &KernelParams) -> Result<Program, KernelError> {
    require_ungrouped(layout)?;
    require_f32(layout)?;
    if params.unroll == 0 || params.unroll > MAX_UNROLL {
        return Err(KernelError::BadUnroll {
            unroll: params.unroll,
            max: MAX_UNROLL,
        });
    }
    let unroll = params.unroll;
    let vl = layout.vl;
    let k_chunks = layout.dims.inner.div_ceil(vl);
    let mut b = ProgramBuilder::new();
    emit_prologue(&mut b, vl, layout.row_stride_bytes);

    let groups: Vec<(usize, usize)> = (0..layout.dims.rows.div_ceil(unroll))
        .map(|g| {
            let row0 = g * unroll;
            (row0, unroll.min(layout.dims.rows - row0))
        })
        .collect();

    b.li(CTR_KTILES, k_chunks as i64);
    for kc in 0..k_chunks {
        let chunk_len = vl.min(layout.dims.inner - kc * vl);
        b.li(CTR_COLTILES, layout.num_coltiles as i64);
        for ct in 0..layout.num_coltiles {
            b.li(CTR_ROWS, groups.len() as i64);
            for &(row0, u_eff) in &groups {
                // Load the A segments and C slices for the group.
                for r in 0..u_eff {
                    let row = row0 + r;
                    b.li(c_addr_xreg(r), layout.c_addr(row, ct * vl) as i64);
                    emit_vload_abs(&mut b, values_vreg(r), layout.a_dense_addr(row, kc * vl));
                    b.push(Instruction::Vle32 {
                        vd: c_vreg(r),
                        rs1: c_addr_xreg(r),
                    });
                }
                b.li(CTR_NNZ, chunk_len as i64);
                for e in 0..chunk_len {
                    // One shared B-row slice per inner step.
                    b.li(ADDR_SCRATCH, layout.b_addr(kc * vl + e, ct * vl) as i64);
                    b.push(Instruction::Vle32 {
                        vd: bslice_vreg(0),
                        rs1: ADDR_SCRATCH,
                    });
                    for r in 0..u_eff {
                        b.push(Instruction::VfmvFs {
                            fd: value_freg(r),
                            vs2: values_vreg(r),
                        });
                    }
                    for r in 0..u_eff {
                        b.push(Instruction::VfmaccVf {
                            vd: c_vreg(r),
                            fs1: value_freg(r),
                            vs2: bslice_vreg(0),
                        });
                    }
                    for r in 0..u_eff {
                        b.push(Instruction::Vslide1downVx {
                            vd: values_vreg(r),
                            vs2: values_vreg(r),
                            rs1: XReg::ZERO,
                        });
                    }
                    emit_loop_step(&mut b, CTR_NNZ);
                }
                for r in 0..u_eff {
                    b.push(Instruction::Vse32 {
                        vs3: c_vreg(r),
                        rs1: c_addr_xreg(r),
                    });
                }
                emit_loop_step(&mut b, CTR_ROWS);
            }
            emit_loop_step(&mut b, CTR_COLTILES);
        }
        emit_loop_step(&mut b, CTR_KTILES);
    }
    b.halt();
    Ok(finish(b, layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_sparse::{prune, NmPattern};
    use indexmac_vpu::SimConfig;

    #[test]
    fn builds_and_counts_macs() {
        let a = prune::random_structured(5, 24, NmPattern::P1_4, 2);
        let l = GemmLayout::plan(&a, 20, &SimConfig::table_i(), 16).unwrap();
        let p = build(&l, &KernelParams::default()).unwrap();
        let macs = p.count(|i| matches!(i, Instruction::VfmaccVf { .. }));
        // One MAC per (row, inner element, coltile): 5 * 24 * 2.
        assert_eq!(macs, 5 * 24 * 2);
    }

    #[test]
    fn shared_b_row_loaded_once_per_step() {
        let a = prune::random_structured(4, 16, NmPattern::P2_4, 2);
        let l = GemmLayout::plan(&a, 16, &SimConfig::table_i(), 16).unwrap();
        let p = build(&l, &KernelParams::default()).unwrap();
        let b_loads = p.count(|i| matches!(i, Instruction::Vle32 { vd, .. } if vd.index() == 12));
        // inner * coltiles, independent of the unroll factor.
        assert_eq!(b_loads, 16);
    }

    #[test]
    fn rejects_bad_unroll() {
        let a = prune::random_structured(2, 8, NmPattern::P1_4, 2);
        let l = GemmLayout::plan(&a, 8, &SimConfig::table_i(), 16).unwrap();
        assert!(build(
            &l,
            &KernelParams {
                unroll: 0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
