//! Transformer workloads: attention/FFN weight GEMMs as a first-class
//! scenario.
//!
//! Structured N:M sparsity's flagship modern workload is the
//! transformer: 2:4-pruned attention projections and feed-forward
//! layers (the follow-up work, arXiv 2501.10189, targets exactly these
//! DNN GEMM shapes with the grouped `vindexmac.vvi` kernel). A
//! transformer block decomposes into six weight GEMMs, all of the form
//! `C = A × B` with A the pruned weight matrix and B the activations —
//! **no im2col needed**: the activation matrix is simply the
//! `seq_len`-batched token embeddings, so B's columns are the sequence
//! positions:
//!
//! * Q/K/V projections — A is `d_model × d_model`, B is
//!   `d_model × seq_len`;
//! * attention output projection — A is `d_model × d_model`;
//! * FFN up projection — A is `d_ff × d_model` (`d_ff = 4·d_model` in
//!   the classic architectures);
//! * FFN down projection — A is `d_model × d_ff`.
//!
//! The attention score products (`Q·Kᵀ`, `scores·V`) are
//! activation × activation and not prunable offline, so they are not
//! part of the sparse workload — exactly the convention of the N:M
//! pruning literature this repo reproduces.

use crate::model::{LayerKind, Model, ModelFamily, ModelLayer};
use indexmac_kernels::{ElemType, GemmDims};

/// The architectural flavour of a transformer preset (the GEMM shapes
/// are identical; the flavour is recorded for display and provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformerKind {
    /// Bidirectional encoder stack (BERT-style).
    Encoder,
    /// Autoregressive decoder stack (GPT-style).
    Decoder,
    /// Vision transformer encoder over image patches (ViT-style).
    Vision,
}

impl std::fmt::Display for TransformerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformerKind::Encoder => write!(f, "encoder"),
            TransformerKind::Decoder => write!(f, "decoder"),
            TransformerKind::Vision => write!(f, "vision encoder"),
        }
    }
}

/// The geometry of a transformer stack; [`TransformerConfig::model`]
/// lowers it to a [`Model`] of weight GEMMs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Preset name ("BERT-base" etc.).
    pub name: String,
    /// Architectural flavour.
    pub kind: TransformerKind,
    /// Hidden (embedding) dimension.
    pub d_model: usize,
    /// Attention heads (`d_model` must divide evenly among them).
    pub num_heads: usize,
    /// FFN inner dimension (`4·d_model` in the classic architectures).
    pub d_ff: usize,
    /// Number of transformer blocks.
    pub blocks: usize,
    /// Sequence length: the batched column count of every weight GEMM.
    pub seq_len: usize,
}

impl TransformerConfig {
    /// Validates and builds a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `num_heads` does not divide
    /// `d_model` (these are programming errors in a preset, not data
    /// conditions).
    pub fn new(
        name: impl Into<String>,
        kind: TransformerKind,
        d_model: usize,
        num_heads: usize,
        d_ff: usize,
        blocks: usize,
        seq_len: usize,
    ) -> Self {
        assert!(
            d_model > 0 && num_heads > 0 && d_ff > 0 && blocks > 0 && seq_len > 0,
            "transformer dimensions must be positive"
        );
        assert!(
            d_model.is_multiple_of(num_heads),
            "d_model {d_model} must divide evenly among {num_heads} heads"
        );
        Self {
            name: name.into(),
            kind,
            d_model,
            num_heads,
            d_ff,
            blocks,
            seq_len,
        }
    }

    /// BERT-base: 12 encoder blocks, `d_model` 768, 12 heads, `d_ff`
    /// 3072, at the standard fine-tuning sequence length of 128.
    pub fn bert_base() -> Self {
        Self::new(
            "BERT-base",
            TransformerKind::Encoder,
            768,
            12,
            3072,
            12,
            128,
        )
    }

    /// GPT-2-small: 12 decoder blocks, `d_model` 768, 12 heads, `d_ff`
    /// 3072, at its full 1024-token context.
    pub fn gpt2_small() -> Self {
        Self::new(
            "GPT-2-small",
            TransformerKind::Decoder,
            768,
            12,
            3072,
            12,
            1024,
        )
    }

    /// ViT-B/16: 12 encoder blocks, `d_model` 768, 12 heads, `d_ff`
    /// 3072, over the 197-token patch sequence (14×14 patches of a
    /// 224×224 image plus the class token).
    pub fn vit_b16() -> Self {
        Self::new("ViT-B/16", TransformerKind::Vision, 768, 12, 3072, 12, 197)
    }

    /// The same stack at a different sequence length (the weights are
    /// untouched; only every GEMM's column count changes).
    #[must_use]
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        assert!(seq_len > 0, "sequence length must be positive");
        self.seq_len = seq_len;
        self
    }

    /// Per-head dimension (`d_model / num_heads`).
    pub fn head_dim(&self) -> usize {
        self.d_model / self.num_heads
    }

    /// The six weight GEMMs of block `index`, in execution order.
    pub fn block_gemms(&self, index: usize) -> Vec<ModelLayer> {
        let proj = GemmDims {
            rows: self.d_model,
            inner: self.d_model,
            cols: self.seq_len,
        };
        let up = GemmDims {
            rows: self.d_ff,
            inner: self.d_model,
            cols: self.seq_len,
        };
        let down = GemmDims {
            rows: self.d_model,
            inner: self.d_ff,
            cols: self.seq_len,
        };
        vec![
            ModelLayer::new(format!("block{index}.attn.q"), LayerKind::Attention, proj),
            ModelLayer::new(format!("block{index}.attn.k"), LayerKind::Attention, proj),
            ModelLayer::new(format!("block{index}.attn.v"), LayerKind::Attention, proj),
            ModelLayer::new(format!("block{index}.attn.out"), LayerKind::Attention, proj),
            ModelLayer::new(format!("block{index}.ffn.up"), LayerKind::Ffn, up),
            ModelLayer::new(format!("block{index}.ffn.down"), LayerKind::Ffn, down),
        ]
    }

    /// Dense MAC count of one block's weight GEMMs:
    /// `seq_len · (4·d_model² + 2·d_model·d_ff)`.
    pub fn block_macs(&self) -> u64 {
        self.seq_len as u64
            * (4 * self.d_model as u64 * self.d_model as u64
                + 2 * self.d_model as u64 * self.d_ff as u64)
    }

    /// Lowers the whole stack to a [`Model`]: every block's six weight
    /// GEMMs, in network order, at fp32.
    pub fn model(&self) -> Model {
        let layers = (0..self.blocks).flat_map(|i| self.block_gemms(i)).collect();
        Model::new(self.name.clone(), ModelFamily::Transformer, layers)
    }
}

impl std::fmt::Display for TransformerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} x{} blocks, d_model {}, {} heads, d_ff {}, seq_len {}",
            self.name,
            self.kind,
            self.blocks,
            self.d_model,
            self.num_heads,
            self.d_ff,
            self.seq_len
        )
    }
}

/// BERT-base as a GEMM workload (fp32).
pub fn bert_base() -> Model {
    TransformerConfig::bert_base().model()
}

/// GPT-2-small as a GEMM workload (fp32).
pub fn gpt2_small() -> Model {
    TransformerConfig::gpt2_small().model()
}

/// ViT-B/16 as a GEMM workload (fp32).
pub fn vit_b16() -> Model {
    TransformerConfig::vit_b16().model()
}

/// Int8-quantized BERT-base: identical GEMM geometry, e8 datapath.
pub fn bert_base_int8() -> Model {
    bert_base().with_precision("BERT-base-int8", ElemType::I8)
}

/// Int8-quantized GPT-2-small.
pub fn gpt2_small_int8() -> Model {
    gpt2_small().with_precision("GPT-2-small-int8", ElemType::I8)
}

/// Int8-quantized ViT-B/16.
pub fn vit_b16_int8() -> Model {
    vit_b16().with_precision("ViT-B/16-int8", ElemType::I8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_geometry() {
        let c = TransformerConfig::bert_base();
        assert_eq!(c.d_model, 768);
        assert_eq!(c.num_heads, 12);
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.d_ff, 4 * c.d_model);
        let m = c.model();
        assert_eq!(m.layers.len(), 12 * 6);
        assert_eq!(m.family, ModelFamily::Transformer);
        // The published BERT-base weight-GEMM MAC count at seq 128.
        assert_eq!(m.total_macs(), 12 * c.block_macs());
        assert_eq!(
            c.block_macs(),
            128 * (4 * 768 * 768 + 2 * 768 * 3072) as u64
        );
    }

    #[test]
    fn block_decomposition_shapes_chain() {
        let c = TransformerConfig::bert_base();
        let block = c.block_gemms(0);
        assert_eq!(block.len(), 6);
        // Q/K/V/out are square d_model projections.
        for l in &block[..4] {
            assert_eq!(l.kind, LayerKind::Attention);
            assert_eq!(l.gemm.rows, c.d_model);
            assert_eq!(l.gemm.inner, c.d_model);
        }
        // FFN up feeds FFN down: up's output features are down's inputs.
        let (up, down) = (&block[4], &block[5]);
        assert_eq!(up.kind, LayerKind::Ffn);
        assert_eq!(up.gemm.rows, c.d_ff);
        assert_eq!(up.gemm.inner, c.d_model);
        assert_eq!(down.gemm.inner, up.gemm.rows);
        assert_eq!(down.gemm.rows, c.d_model);
        // Every GEMM batches the same seq_len columns.
        assert!(block.iter().all(|l| l.gemm.cols == c.seq_len));
    }

    #[test]
    fn presets_differ_only_where_expected() {
        let bert = TransformerConfig::bert_base();
        let gpt = TransformerConfig::gpt2_small();
        let vit = TransformerConfig::vit_b16();
        // All three share the 768/12/3072 × 12-block geometry...
        for c in [&bert, &gpt, &vit] {
            assert_eq!(
                (c.d_model, c.num_heads, c.d_ff, c.blocks),
                (768, 12, 3072, 12)
            );
        }
        // ...and differ in flavour and sequence length.
        assert_eq!(bert.kind, TransformerKind::Encoder);
        assert_eq!(gpt.kind, TransformerKind::Decoder);
        assert_eq!(vit.kind, TransformerKind::Vision);
        assert_eq!((bert.seq_len, gpt.seq_len, vit.seq_len), (128, 1024, 197));
    }

    #[test]
    fn with_seq_len_rescales_every_column_count() {
        let base = TransformerConfig::bert_base();
        let longer = base.clone().with_seq_len(512);
        let (m1, m2) = (base.model(), longer.model());
        assert_eq!(m1.layers.len(), m2.layers.len());
        for (a, b) in m1.layers.iter().zip(&m2.layers) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.gemm.rows, b.gemm.rows);
            assert_eq!(a.gemm.inner, b.gemm.inner);
            assert_eq!(b.gemm.cols, 512);
        }
        // MACs scale linearly with seq_len.
        assert_eq!(m1.total_macs() * 4, m2.total_macs());
    }

    #[test]
    fn int8_presets_share_geometry() {
        for (f, q) in Model::transformer_models()
            .iter()
            .zip(&Model::quantized_transformer_models())
        {
            assert_eq!(f.precision, ElemType::F32);
            assert_eq!(q.precision, ElemType::I8);
            assert_eq!(f.layers, q.layers);
            assert!(q.name.ends_with("-int8"));
        }
    }

    #[test]
    fn unique_shapes_collapse_to_one_block() {
        // All 12 blocks repeat the same three distinct shapes
        // (projection, FFN up, FFN down).
        let m = bert_base();
        let shapes = m.unique_shapes();
        assert_eq!(shapes.len(), 3);
        assert_eq!(shapes[0].1, 4 * 12); // q/k/v/out × blocks
        assert_eq!(shapes[1].1, 12); // ffn.up × blocks
        assert_eq!(shapes[2].1, 12); // ffn.down × blocks
    }

    #[test]
    fn heaviest_layers_are_ffn() {
        let m = bert_base();
        for l in m.heaviest_layers(2) {
            assert_eq!(l.kind, LayerKind::Ffn, "{}", l.name);
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn heads_must_divide_d_model() {
        TransformerConfig::new("bad", TransformerKind::Encoder, 768, 7, 3072, 12, 128);
    }

    #[test]
    fn display_summarises_geometry() {
        let c = TransformerConfig::gpt2_small();
        let s = c.to_string();
        assert!(s.contains("GPT-2-small"));
        assert!(s.contains("decoder"));
        assert!(s.contains("seq_len 1024"));
    }
}
