//! Workload definitions for the IndexMAC evaluation — the model layer
//! of the stack, generalised over workload families.
//!
//! The paper evaluates three ImageNet CNNs — ResNet50, DenseNet121 and
//! InceptionV3 — whose convolutions are mapped to sparse x dense matrix
//! multiplications `A x B` ("the convolutions of each layer of the
//! examined CNNs are mapped to sparse-dense matrix multiplications"):
//! `A` holds the structured-sparse weights (one row per output channel,
//! `Cin*Kh*Kw` columns) and `B` the im2col-unrolled input features
//! (`Cin*Kh*Kw` rows, `Hout*Wout` columns).
//!
//! Structured N:M sparsity's flagship modern workload is the
//! transformer, so the same abstraction also carries the attention/FFN
//! weight GEMMs of BERT-base, GPT-2-small and ViT-B/16 (see
//! [`transformer`]) — no im2col there: `B` is the sequence-length-
//! batched activation matrix directly.
//!
//! Every family lowers to the same thing: a [`Model`] — a named list of
//! [`ModelLayer`]s, each one structured-sparse × dense GEMM — which the
//! experiment drivers in `indexmac` simulate uniformly.
//!
//! # Example
//!
//! ```
//! use indexmac_models::{bert_base, resnet50, ModelFamily};
//!
//! let cnn = resnet50();
//! assert_eq!(cnn.layers.len(), 53);
//! assert_eq!(cnn.layers[0].gemm.rows, 64); // output channels
//!
//! let bert = bert_base();
//! assert_eq!(bert.family, ModelFamily::Transformer);
//! assert_eq!(bert.layers.len(), 12 * 6); // 6 weight GEMMs per block
//! ```

#![warn(missing_docs)]

pub mod conv;
pub mod densenet;
pub mod inception;
pub mod model;
pub mod resnet;
pub mod scaling;
pub mod transformer;

pub use conv::ConvLayer;
pub use densenet::densenet121;
pub use inception::inception_v3;
pub use model::{LayerKind, Model, ModelFamily, ModelLayer};
pub use resnet::resnet50;
pub use scaling::GemmCaps;
pub use transformer::{
    bert_base, bert_base_int8, gpt2_small, gpt2_small_int8, vit_b16, vit_b16_int8,
    TransformerConfig, TransformerKind,
};

use indexmac_kernels::ElemType;

/// Int8-quantized ResNet50: identical layer geometry, e8 datapath.
pub fn resnet50_int8() -> Model {
    resnet50().with_precision("ResNet50-int8", ElemType::I8)
}

/// Int8-quantized DenseNet121.
pub fn densenet121_int8() -> Model {
    densenet121().with_precision("DenseNet121-int8", ElemType::I8)
}

/// Int8-quantized InceptionV3.
pub fn inception_v3_int8() -> Model {
    inception_v3().with_precision("InceptionV3-int8", ElemType::I8)
}
