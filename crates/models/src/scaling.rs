//! Capping layer GEMMs to simulator-friendly sizes.
//!
//! Full-size CNN layers are simulable but slow (the paper ran gem5 for
//! this reason). Since both kernels' per-(row, k-tile, column-tile) work
//! repeats identically across a layer, capping the GEMM dimensions
//! preserves the speedup and traffic *ratios* while bounding runtime.
//! Every experiment records the caps used (see EXPERIMENTS.md).

use indexmac_kernels::GemmDims;

/// Upper bounds applied to a layer GEMM before simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmCaps {
    /// Maximum rows of A/C simulated (output channels).
    pub max_rows: usize,
    /// Maximum inner dimension simulated (`Cin*Kh*Kw`).
    pub max_inner: usize,
    /// Maximum columns of B/C simulated (output pixels).
    pub max_cols: usize,
}

impl GemmCaps {
    /// The default evaluation caps: big enough that per-tile behaviour
    /// is exercised *and* that early-network B matrices (512 x 512 x 4 B
    /// = 1 MB) overflow the 512 KB L2 while late-network ones (196 / 49
    /// columns) fit — the residency contrast behind the paper's
    /// declining per-layer speedups (Fig. 4) — yet small enough for
    /// second-scale layer simulations.
    pub fn default_eval() -> Self {
        Self {
            max_rows: 64,
            max_inner: 512,
            max_cols: 512,
        }
    }

    /// A fast profile for CI-style smoke tests.
    pub fn smoke() -> Self {
        Self {
            max_rows: 16,
            max_inner: 128,
            max_cols: 32,
        }
    }

    /// No capping: simulate layers at full size.
    pub fn unbounded() -> Self {
        Self {
            max_rows: usize::MAX,
            max_inner: usize::MAX,
            max_cols: usize::MAX,
        }
    }

    /// Applies the caps to a GEMM shape.
    pub fn apply(&self, g: GemmDims) -> GemmDims {
        GemmDims {
            rows: g.rows.min(self.max_rows),
            inner: g.inner.min(self.max_inner),
            cols: g.cols.min(self.max_cols),
        }
    }

    /// Whether `g` would be altered by these caps.
    pub fn clips(&self, g: GemmDims) -> bool {
        g.rows > self.max_rows || g.inner > self.max_inner || g.cols > self.max_cols
    }

    /// The fraction of the dense MAC volume retained after capping
    /// (1.0 = uncapped), recorded alongside results.
    pub fn retained_fraction(&self, g: GemmDims) -> f64 {
        self.apply(g).dense_macs() as f64 / g.dense_macs() as f64
    }
}

impl std::fmt::Display for GemmCaps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Self::unbounded() {
            write!(f, "uncapped")
        } else {
            write!(
                f,
                "caps(rows<={}, inner<={}, cols<={})",
                self.max_rows, self.max_inner, self.max_cols
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_clips_each_dimension() {
        let caps = GemmCaps {
            max_rows: 10,
            max_inner: 20,
            max_cols: 30,
        };
        let g = GemmDims {
            rows: 100,
            inner: 15,
            cols: 300,
        };
        let c = caps.apply(g);
        assert_eq!(
            c,
            GemmDims {
                rows: 10,
                inner: 15,
                cols: 30
            }
        );
        assert!(caps.clips(g));
        assert!(!caps.clips(c));
    }

    #[test]
    fn unbounded_is_identity() {
        let caps = GemmCaps::unbounded();
        let g = GemmDims {
            rows: 2048,
            inner: 4608,
            cols: 12544,
        };
        assert_eq!(caps.apply(g), g);
        assert_eq!(caps.retained_fraction(g), 1.0);
        assert_eq!(caps.to_string(), "uncapped");
    }

    #[test]
    fn retained_fraction() {
        let caps = GemmCaps {
            max_rows: 5,
            max_inner: 10,
            max_cols: 10,
        };
        let g = GemmDims {
            rows: 10,
            inner: 10,
            cols: 10,
        };
        assert_eq!(caps.retained_fraction(g), 0.5);
    }

    #[test]
    fn eval_caps_clip_resnet_conv1() {
        let g = GemmDims {
            rows: 64,
            inner: 147,
            cols: 12544,
        };
        let caps = GemmCaps::default_eval();
        let c = caps.apply(g);
        assert_eq!(c.cols, 512);
        assert_eq!(c.rows, 64);
        assert_eq!(c.inner, 147);
    }

    #[test]
    fn eval_caps_preserve_l2_residency_contrast() {
        // Early layers: capped B is 512*512*4 = 1 MiB > 512 KiB L2.
        let caps = GemmCaps::default_eval();
        let early = caps.apply(GemmDims {
            rows: 64,
            inner: 1152,
            cols: 3136,
        });
        assert!(early.inner * early.cols * 4 > 512 * 1024);
        // Late layers: 49-column maps stay uncapped and fit easily.
        let late = caps.apply(GemmDims {
            rows: 2048,
            inner: 512,
            cols: 49,
        });
        assert_eq!(late.cols, 49);
        assert!(late.inner * late.cols * 4 < 512 * 1024);
    }
}
