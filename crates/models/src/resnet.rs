//! ResNet50 layer table, generated from the published block structure
//! (He et al., CVPR 2016; torchvision v1.5-style bottleneck with the
//! stride on the 3x3 convolution).

use crate::conv::ConvLayer;
use crate::model::Model;

/// Builds the 53 convolution layers of ResNet50 for 224x224 inputs.
pub fn resnet50() -> Model {
    Model::from_convs("ResNet50", resnet50_convs())
}

/// The raw convolution table behind [`resnet50`] (kernel/stride/padding
/// geometry, before lowering to GEMMs).
pub fn resnet50_convs() -> Vec<ConvLayer> {
    let mut layers = Vec::new();
    // Stem: conv1 7x7/2, then 3x3/2 max-pool (pooling adds no conv).
    layers.push(ConvLayer::square("conv1", 3, 64, 7, 2, 3, 224, 224));

    // (stage, blocks, mid channels, out channels)
    let stages = [
        ("layer1", 3, 64, 256),
        ("layer2", 4, 128, 512),
        ("layer3", 6, 256, 1024),
        ("layer4", 3, 512, 2048),
    ];

    let mut in_ch = 64; // after the stem + max-pool
    let mut h = 56; // 112 / 2 from max-pool
    let mut w = 56;
    for (si, (name, blocks, mid, out)) in stages.into_iter().enumerate() {
        for blk in 0..blocks {
            let stride = if si > 0 && blk == 0 { 2 } else { 1 };
            // conv1 1x1 (reduce)
            layers.push(ConvLayer::square(
                format!("{name}.{blk}.conv1"),
                in_ch,
                mid,
                1,
                1,
                0,
                h,
                w,
            ));
            // conv2 3x3 (stride lives here, torchvision ResNet-50 v1.5)
            layers.push(ConvLayer::square(
                format!("{name}.{blk}.conv2"),
                mid,
                mid,
                3,
                stride,
                1,
                h,
                w,
            ));
            let (oh, ow) = (h.div_ceil(stride), w.div_ceil(stride));
            // conv3 1x1 (expand)
            layers.push(ConvLayer::square(
                format!("{name}.{blk}.conv3"),
                mid,
                out,
                1,
                1,
                0,
                oh,
                ow,
            ));
            if blk == 0 {
                // Projection shortcut.
                layers.push(ConvLayer::square(
                    format!("{name}.{blk}.downsample"),
                    in_ch,
                    out,
                    1,
                    stride,
                    0,
                    h,
                    w,
                ));
            }
            in_ch = out;
            h = oh;
            w = ow;
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_is_53() {
        assert_eq!(resnet50().layers.len(), 53);
    }

    #[test]
    fn total_macs_in_published_range() {
        // torchvision ResNet50: ~4.09 GMACs of convolution.
        let macs = resnet50().total_macs();
        assert!(
            (3.7e9..4.4e9).contains(&(macs as f64)),
            "ResNet50 conv MACs {macs} outside published ~4.1G"
        );
    }

    #[test]
    fn spatial_dims_shrink_through_stages() {
        let m = resnet50_convs();
        let first = &m[1]; // layer1.0.conv1
        assert_eq!(first.in_h, 56);
        let last = m.last().unwrap();
        assert_eq!(last.in_h, 7);
        // Fig. 4 observation: later-layer B matrices are smaller.
        assert!(last.gemm().cols < first.gemm().cols);
        assert_eq!(last.gemm().cols, 49);
    }

    #[test]
    fn channel_progression() {
        let m = resnet50_convs();
        // Final block expands to 2048 channels.
        assert_eq!(m.last().unwrap().out_channels, 2048);
        // Downsample convs present exactly once per stage.
        let downs = m.iter().filter(|l| l.name.contains("downsample")).count();
        assert_eq!(downs, 4);
    }

    #[test]
    fn strided_blocks_halve_maps() {
        let m = resnet50_convs();
        let l2c2 = m.iter().find(|l| l.name == "layer2.0.conv2").unwrap();
        assert_eq!(l2c2.stride, 2);
        assert_eq!(l2c2.in_h, 56);
        assert_eq!(l2c2.out_h(), 28);
    }
}
