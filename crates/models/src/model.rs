//! The model-agnostic workload abstraction.
//!
//! Every workload this repository evaluates — CNN convolutions lowered
//! through im2col, transformer projections with sequence-length-batched
//! columns — ultimately executes as a list of structured-sparse × dense
//! GEMMs. [`Model`] is that list: a named sequence of [`ModelLayer`]s,
//! each carrying the GEMM it lowers to, tagged with the [`ModelFamily`]
//! it came from and the element precision its GEMMs run at.

use crate::conv::ConvLayer;
use indexmac_kernels::{ElemType, GemmDims};

/// The workload family a model belongs to (which lowering produced its
/// GEMM list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Convolutional network: layers are im2col-lowered convolutions.
    Cnn,
    /// Transformer encoder/decoder stack: layers are the weight GEMMs
    /// of attention projections and feed-forward blocks.
    Transformer,
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelFamily::Cnn => write!(f, "CNN"),
            ModelFamily::Transformer => write!(f, "transformer"),
        }
    }
}

/// What a layer computes (the operator its GEMM stands for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// An im2col-lowered convolution.
    Conv,
    /// An attention projection (Q, K, V or the output projection).
    Attention,
    /// A feed-forward (MLP) projection.
    Ffn,
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayerKind::Conv => write!(f, "conv"),
            LayerKind::Attention => write!(f, "attn"),
            LayerKind::Ffn => write!(f, "ffn"),
        }
    }
}

/// One layer of a [`Model`]: anything that lowers to a single
/// structured-sparse × dense product `C = A × B` (A holds the pruned
/// weights, B the activations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLayer {
    /// Name within the network (e.g. `layer2.0.conv2`, `block0.ffn.up`).
    pub name: String,
    /// The operator this GEMM stands for.
    pub kind: LayerKind,
    /// The lowered GEMM shape.
    pub gemm: GemmDims,
}

impl ModelLayer {
    /// Builds a layer from its lowered GEMM shape.
    pub fn new(name: impl Into<String>, kind: LayerKind, gemm: GemmDims) -> Self {
        Self {
            name: name.into(),
            kind,
            gemm,
        }
    }

    /// Dense multiply-accumulate count of this layer.
    pub fn macs(&self) -> u64 {
        self.gemm.dense_macs()
    }
}

impl From<&ConvLayer> for ModelLayer {
    fn from(conv: &ConvLayer) -> Self {
        ModelLayer::new(conv.name.clone(), LayerKind::Conv, conv.gemm())
    }
}

impl std::fmt::Display for ModelLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} GEMM {}x{}x{}",
            self.name, self.kind, self.gemm.rows, self.gemm.inner, self.gemm.cols
        )
    }
}

/// A workload as a flat list of GEMM-bearing layers, in network order.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name ("ResNet50", "BERT-base" etc.).
    pub name: String,
    /// Which lowering produced the layer list.
    pub family: ModelFamily,
    /// GEMM layers in network order.
    pub layers: Vec<ModelLayer>,
    /// Element precision the model's GEMMs run at: `F32` for the
    /// paper's networks, `I8`/`I16` for the quantized preset variants.
    pub precision: ElemType,
}

impl Model {
    /// Wraps a layer list at the paper's f32 precision.
    pub fn new(name: impl Into<String>, family: ModelFamily, layers: Vec<ModelLayer>) -> Self {
        Self {
            name: name.into(),
            family,
            layers,
            precision: ElemType::F32,
        }
    }

    /// Builds a CNN model from its convolution layers (each lowered to
    /// its im2col GEMM).
    pub fn from_convs(name: impl Into<String>, convs: Vec<ConvLayer>) -> Self {
        Self::new(
            name,
            ModelFamily::Cnn,
            convs.iter().map(ModelLayer::from).collect(),
        )
    }

    /// The same network tagged with a different element precision (the
    /// layer shapes are precision-independent — lowering geometry only).
    #[must_use]
    pub fn with_precision(mut self, name: impl Into<String>, precision: ElemType) -> Self {
        self.name = name.into();
        self.precision = precision;
        self
    }

    /// The first `count` layers as their own model (named
    /// `<name>-head`), preserving family and precision — the standard
    /// truncation for smoke-scale aggregate tests.
    #[must_use]
    pub fn head(&self, count: usize) -> Model {
        Model {
            name: format!("{}-head", self.name),
            family: self.family,
            layers: self.layers[..count.min(self.layers.len())].to_vec(),
            precision: self.precision,
        }
    }

    /// Looks a layer up by its network name.
    pub fn layer(&self, name: &str) -> Option<&ModelLayer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Total dense multiply-accumulate count.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(ModelLayer::macs).sum()
    }

    /// The `count` layers with the largest MAC counts, heaviest first —
    /// used to pick representative layers for capped simulations.
    pub fn heaviest_layers(&self, count: usize) -> Vec<&ModelLayer> {
        let mut sorted: Vec<&ModelLayer> = self.layers.iter().collect();
        sorted.sort_by_key(|l| std::cmp::Reverse(l.macs()));
        sorted.truncate(count);
        sorted
    }

    /// The distinct GEMM shapes of the layer list, first-appearance
    /// order, each with its multiplicity. Transformer stacks repeat one
    /// block geometry, so simulating per unique shape instead of per
    /// layer cuts the work by the block count.
    pub fn unique_shapes(&self) -> Vec<(GemmDims, usize)> {
        let mut shapes: Vec<(GemmDims, usize)> = Vec::new();
        for layer in &self.layers {
            match shapes.iter_mut().find(|(g, _)| *g == layer.gemm) {
                Some((_, count)) => *count += 1,
                None => shapes.push((layer.gemm, 1)),
            }
        }
        shapes
    }

    /// All three CNN evaluation models of the paper.
    pub fn paper_models() -> Vec<Model> {
        vec![
            crate::resnet50(),
            crate::densenet121(),
            crate::inception_v3(),
        ]
    }

    /// The int8-quantized variants of the three CNN evaluation models —
    /// same layer geometry, e8 datapath (widening i8→i32 MACs).
    pub fn quantized_models() -> Vec<Model> {
        vec![
            crate::resnet50_int8(),
            crate::densenet121_int8(),
            crate::inception_v3_int8(),
        ]
    }

    /// The three transformer presets at fp32 (BERT-base, GPT-2-small,
    /// ViT-B/16 — see [`crate::transformer`]).
    pub fn transformer_models() -> Vec<Model> {
        vec![crate::bert_base(), crate::gpt2_small(), crate::vit_b16()]
    }

    /// The int8-quantized transformer presets.
    pub fn quantized_transformer_models() -> Vec<Model> {
        vec![
            crate::bert_base_int8(),
            crate::gpt2_small_int8(),
            crate::vit_b16_int8(),
        ]
    }

    /// Every built-in preset across both families and both precisions.
    pub fn all_presets() -> Vec<Model> {
        let mut all = Self::paper_models();
        all.extend(Self::quantized_models());
        all.extend(Self::transformer_models());
        all.extend(Self::quantized_transformer_models());
        all
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} {} layers, {:.2} GMACs, {} elements",
            self.name,
            self.layers.len(),
            self.family,
            self.total_macs() as f64 / 1e9,
            self.precision
        )?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_present() {
        let models = Model::paper_models();
        assert_eq!(models.len(), 3);
        let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["ResNet50", "DenseNet121", "InceptionV3"]);
        assert!(models.iter().all(|m| m.family == ModelFamily::Cnn));
    }

    #[test]
    fn heaviest_layers_sorted() {
        let m = crate::resnet50();
        let top = m.heaviest_layers(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].macs() >= w[1].macs());
        }
        assert!(top[0].macs() >= m.total_macs() / m.layers.len() as u64);
    }

    #[test]
    fn quantized_variants_share_geometry() {
        use indexmac_kernels::ElemType;
        let f32s = Model::paper_models();
        let int8s = Model::quantized_models();
        assert_eq!(int8s.len(), 3);
        for (f, q) in f32s.iter().zip(&int8s) {
            assert_eq!(f.precision, ElemType::F32);
            assert_eq!(q.precision, ElemType::I8);
            assert_eq!(f.layers, q.layers, "{}: geometry must not change", q.name);
            assert!(q.name.ends_with("-int8"));
            assert_eq!(f.total_macs(), q.total_macs());
        }
    }

    #[test]
    fn with_precision_accepts_owned_names() {
        // The satellite fix: derived presets may pass computed names
        // without leaking &'static str.
        let base = crate::resnet50();
        let derived = base
            .clone()
            .with_precision(format!("{}-i16", base.name), ElemType::I16);
        assert_eq!(derived.name, "ResNet50-i16");
        assert_eq!(derived.precision, ElemType::I16);
        assert_eq!(derived.layers, base.layers);
    }

    #[test]
    fn head_truncates_and_renames() {
        let m = crate::resnet50_int8();
        let h = m.head(3);
        assert_eq!(h.layers.len(), 3);
        assert_eq!(h.name, "ResNet50-int8-head");
        assert_eq!(h.precision, m.precision);
        assert_eq!(h.family, ModelFamily::Cnn);
        assert_eq!(h.layers, m.layers[..3]);
        // Over-long heads clamp instead of panicking.
        assert_eq!(m.head(10_000).layers.len(), m.layers.len());
    }

    #[test]
    fn layer_lookup_by_name() {
        let m = crate::resnet50();
        assert!(m.layer("conv1").is_some());
        assert_eq!(m.layer("conv1").unwrap().kind, LayerKind::Conv);
        assert!(m.layer("nope").is_none());
    }

    #[test]
    fn unique_shapes_count_multiplicity() {
        let m = crate::resnet50();
        let shapes = m.unique_shapes();
        let total: usize = shapes.iter().map(|(_, c)| c).sum();
        assert_eq!(total, m.layers.len());
        assert!(shapes.len() < m.layers.len(), "ResNet50 repeats shapes");
        // First-appearance order: the stem conv comes first.
        assert_eq!(shapes[0].0, m.layers[0].gemm);
    }

    #[test]
    fn all_presets_cover_both_families_and_precisions() {
        let all = Model::all_presets();
        assert_eq!(all.len(), 12);
        // Names are unique (no preset listed twice).
        let mut names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        // 6 per family, and every f32 preset has an -int8 twin.
        for family in [ModelFamily::Cnn, ModelFamily::Transformer] {
            let of_family: Vec<&Model> = all.iter().filter(|m| m.family == family).collect();
            assert_eq!(of_family.len(), 6, "{family}");
            assert_eq!(
                of_family.iter().filter(|m| m.precision.is_int()).count(),
                3,
                "{family}"
            );
        }
    }

    #[test]
    fn conv_layers_lower_to_their_im2col_gemm() {
        let conv = ConvLayer::square("c", 3, 8, 3, 1, 1, 8, 8);
        let layer = ModelLayer::from(&conv);
        assert_eq!(layer.gemm, conv.gemm());
        assert_eq!(layer.kind, LayerKind::Conv);
        assert_eq!(layer.macs(), conv.macs());
    }

    #[test]
    fn display_lists_layers() {
        let m = crate::resnet50();
        let s = m.to_string();
        assert!(s.contains("ResNet50"));
        assert!(s.contains("conv1"));
        assert!(s.contains("GMACs"));
        assert!(s.contains("CNN"));
    }
}
