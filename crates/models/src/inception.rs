//! InceptionV3 layer table (Szegedy et al., CVPR 2016), 299x299 inputs,
//! inference path (auxiliary-classifier convolutions excluded), matching
//! the torchvision module layout: 94 convolutions.

use crate::conv::ConvLayer;
use crate::model::Model;

#[allow(clippy::too_many_arguments)] // flat table-row constructor
fn conv(
    layers: &mut Vec<ConvLayer>,
    name: String,
    in_ch: usize,
    out_ch: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    ph: usize,
    pw: usize,
    hw: usize,
) {
    layers.push(ConvLayer {
        name,
        in_channels: in_ch,
        out_channels: out_ch,
        kernel_h: kh,
        kernel_w: kw,
        stride,
        pad_h: ph,
        pad_w: pw,
        in_h: hw,
        in_w: hw,
    });
}

fn inception_a(layers: &mut Vec<ConvLayer>, name: &str, in_ch: usize, pool: usize) -> usize {
    let hw = 35;
    conv(
        layers,
        format!("{name}.branch1x1"),
        in_ch,
        64,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch5x5_1"),
        in_ch,
        48,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch5x5_2"),
        48,
        64,
        5,
        5,
        1,
        2,
        2,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_1"),
        in_ch,
        64,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_2"),
        64,
        96,
        3,
        3,
        1,
        1,
        1,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_3"),
        96,
        96,
        3,
        3,
        1,
        1,
        1,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch_pool"),
        in_ch,
        pool,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    64 + 64 + 96 + pool
}

fn inception_b(layers: &mut Vec<ConvLayer>, name: &str, in_ch: usize) -> usize {
    let hw = 35;
    conv(
        layers,
        format!("{name}.branch3x3"),
        in_ch,
        384,
        3,
        3,
        2,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_1"),
        in_ch,
        64,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_2"),
        64,
        96,
        3,
        3,
        1,
        1,
        1,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_3"),
        96,
        96,
        3,
        3,
        2,
        0,
        0,
        hw,
    );
    384 + 96 + in_ch // max-pool branch carries the input through
}

fn inception_c(layers: &mut Vec<ConvLayer>, name: &str, in_ch: usize, c7: usize) -> usize {
    let hw = 17;
    conv(
        layers,
        format!("{name}.branch1x1"),
        in_ch,
        192,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7_1"),
        in_ch,
        c7,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7_2"),
        c7,
        c7,
        1,
        7,
        1,
        0,
        3,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7_3"),
        c7,
        192,
        7,
        1,
        1,
        3,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7dbl_1"),
        in_ch,
        c7,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7dbl_2"),
        c7,
        c7,
        7,
        1,
        1,
        3,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7dbl_3"),
        c7,
        c7,
        1,
        7,
        1,
        0,
        3,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7dbl_4"),
        c7,
        c7,
        7,
        1,
        1,
        3,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7dbl_5"),
        c7,
        192,
        1,
        7,
        1,
        0,
        3,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch_pool"),
        in_ch,
        192,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    192 * 4
}

fn inception_d(layers: &mut Vec<ConvLayer>, name: &str, in_ch: usize) -> usize {
    let hw = 17;
    conv(
        layers,
        format!("{name}.branch3x3_1"),
        in_ch,
        192,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3_2"),
        192,
        320,
        3,
        3,
        2,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7x3_1"),
        in_ch,
        192,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7x3_2"),
        192,
        192,
        1,
        7,
        1,
        0,
        3,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7x3_3"),
        192,
        192,
        7,
        1,
        1,
        3,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch7x7x3_4"),
        192,
        192,
        3,
        3,
        2,
        0,
        0,
        hw,
    );
    320 + 192 + in_ch
}

fn inception_e(layers: &mut Vec<ConvLayer>, name: &str, in_ch: usize) -> usize {
    let hw = 8;
    conv(
        layers,
        format!("{name}.branch1x1"),
        in_ch,
        320,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3_1"),
        in_ch,
        384,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3_2a"),
        384,
        384,
        1,
        3,
        1,
        0,
        1,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3_2b"),
        384,
        384,
        3,
        1,
        1,
        1,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_1"),
        in_ch,
        448,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_2"),
        448,
        384,
        3,
        3,
        1,
        1,
        1,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_3a"),
        384,
        384,
        1,
        3,
        1,
        0,
        1,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch3x3dbl_3b"),
        384,
        384,
        3,
        1,
        1,
        1,
        0,
        hw,
    );
    conv(
        layers,
        format!("{name}.branch_pool"),
        in_ch,
        192,
        1,
        1,
        1,
        0,
        0,
        hw,
    );
    320 + 2 * 384 + 2 * 384 + 192
}

/// Builds the 94 convolution layers of InceptionV3 for 299x299 inputs.
pub fn inception_v3() -> Model {
    Model::from_convs("InceptionV3", inception_v3_convs())
}

/// The raw convolution table behind [`inception_v3`].
pub fn inception_v3_convs() -> Vec<ConvLayer> {
    let mut layers = Vec::new();
    // Stem.
    conv(
        &mut layers,
        "Conv2d_1a_3x3".into(),
        3,
        32,
        3,
        3,
        2,
        0,
        0,
        299,
    ); // -> 149
    conv(
        &mut layers,
        "Conv2d_2a_3x3".into(),
        32,
        32,
        3,
        3,
        1,
        0,
        0,
        149,
    ); // -> 147
    conv(
        &mut layers,
        "Conv2d_2b_3x3".into(),
        32,
        64,
        3,
        3,
        1,
        1,
        1,
        147,
    ); // -> 147
       // max-pool 3x3/2 -> 73
    conv(
        &mut layers,
        "Conv2d_3b_1x1".into(),
        64,
        80,
        1,
        1,
        1,
        0,
        0,
        73,
    );
    conv(
        &mut layers,
        "Conv2d_4a_3x3".into(),
        80,
        192,
        3,
        3,
        1,
        0,
        0,
        73,
    ); // -> 71
       // max-pool 3x3/2 -> 35

    let mut ch = 192;
    ch = inception_a(&mut layers, "Mixed_5b", ch, 32);
    ch = inception_a(&mut layers, "Mixed_5c", ch, 64);
    ch = inception_a(&mut layers, "Mixed_5d", ch, 64);
    ch = inception_b(&mut layers, "Mixed_6a", ch);
    ch = inception_c(&mut layers, "Mixed_6b", ch, 128);
    ch = inception_c(&mut layers, "Mixed_6c", ch, 160);
    ch = inception_c(&mut layers, "Mixed_6d", ch, 160);
    ch = inception_c(&mut layers, "Mixed_6e", ch, 192);
    ch = inception_d(&mut layers, "Mixed_7a", ch);
    ch = inception_e(&mut layers, "Mixed_7b", ch);
    let _final = inception_e(&mut layers, "Mixed_7c", ch);
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_is_94() {
        assert_eq!(inception_v3().layers.len(), 94);
    }

    #[test]
    fn total_macs_in_published_range() {
        // Published InceptionV3: ~5.7 GMACs of convolution.
        let macs = inception_v3().total_macs();
        assert!(
            (5.0e9..6.2e9).contains(&(macs as f64)),
            "InceptionV3 conv MACs {macs} outside published ~5.7G"
        );
    }

    #[test]
    fn channel_arithmetic_through_mixed_blocks() {
        let m = inception_v3_convs();
        // Mixed_5b output 256, 5c 288 (branch inputs confirm).
        let b5c = m.iter().find(|l| l.name == "Mixed_5c.branch1x1").unwrap();
        assert_eq!(b5c.in_channels, 256);
        let b5d = m.iter().find(|l| l.name == "Mixed_5d.branch1x1").unwrap();
        assert_eq!(b5d.in_channels, 288);
        // Mixed_6b sees 768 after the grid reduction.
        let b6b = m.iter().find(|l| l.name == "Mixed_6b.branch1x1").unwrap();
        assert_eq!(b6b.in_channels, 768);
        // Mixed_7b sees 1280 after InceptionD; Mixed_7c sees 2048.
        let b7b = m.iter().find(|l| l.name == "Mixed_7b.branch1x1").unwrap();
        assert_eq!(b7b.in_channels, 1280);
        let b7c = m.iter().find(|l| l.name == "Mixed_7c.branch1x1").unwrap();
        assert_eq!(b7c.in_channels, 2048);
    }

    #[test]
    fn factorised_convolutions_present() {
        let m = inception_v3_convs();
        let c17 = m.iter().find(|l| l.name == "Mixed_6b.branch7x7_2").unwrap();
        assert_eq!((c17.kernel_h, c17.kernel_w), (1, 7));
        assert_eq!(c17.out_h(), 17);
        assert_eq!(c17.out_w(), 17);
        let c71 = m.iter().find(|l| l.name == "Mixed_6b.branch7x7_3").unwrap();
        assert_eq!((c71.kernel_h, c71.kernel_w), (7, 1));
    }

    #[test]
    fn grid_sizes() {
        let m = inception_v3_convs();
        assert!(m.iter().filter(|l| l.in_h == 35).count() >= 21);
        assert!(m.iter().filter(|l| l.in_h == 17).count() >= 40);
        assert!(m.iter().filter(|l| l.in_h == 8).count() >= 18);
    }
}
