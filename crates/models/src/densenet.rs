//! DenseNet121 layer table (Huang et al., CVPR 2017): growth rate 32,
//! block configuration (6, 12, 24, 16), bottleneck factor 4, transition
//! compression 0.5.

use crate::conv::ConvLayer;
use crate::model::Model;

const GROWTH: usize = 32;
const BLOCKS: [usize; 4] = [6, 12, 24, 16];

/// Builds the 120 convolution layers of DenseNet121 for 224x224 inputs.
pub fn densenet121() -> Model {
    Model::from_convs("DenseNet121", densenet121_convs())
}

/// The raw convolution table behind [`densenet121`].
pub fn densenet121_convs() -> Vec<ConvLayer> {
    let mut layers = Vec::new();
    layers.push(ConvLayer::square(
        "features.conv0",
        3,
        64,
        7,
        2,
        3,
        224,
        224,
    ));
    // 3x3/2 max-pool follows the stem.
    let mut ch = 64;
    let mut h = 56;
    let mut w = 56;
    for (bi, &num_layers) in BLOCKS.iter().enumerate() {
        for li in 0..num_layers {
            // Bottleneck: 1x1 to 4*growth, then 3x3 to growth.
            layers.push(ConvLayer::square(
                format!("denseblock{}.denselayer{}.conv1", bi + 1, li + 1),
                ch,
                4 * GROWTH,
                1,
                1,
                0,
                h,
                w,
            ));
            layers.push(ConvLayer::square(
                format!("denseblock{}.denselayer{}.conv2", bi + 1, li + 1),
                4 * GROWTH,
                GROWTH,
                3,
                1,
                1,
                h,
                w,
            ));
            ch += GROWTH; // dense connectivity: concatenate the new features
        }
        if bi + 1 < BLOCKS.len() {
            // Transition: 1x1 halving channels, then 2x2 avg-pool.
            layers.push(ConvLayer::square(
                format!("transition{}.conv", bi + 1),
                ch,
                ch / 2,
                1,
                1,
                0,
                h,
                w,
            ));
            ch /= 2;
            h /= 2;
            w /= 2;
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_is_120() {
        // 1 stem + 58 dense layers x 2 + 3 transitions.
        assert_eq!(densenet121().layers.len(), 120);
    }

    #[test]
    fn total_macs_in_published_range() {
        // Published DenseNet121: ~2.8-2.9 GMACs.
        let macs = densenet121().total_macs();
        assert!(
            (2.5e9..3.2e9).contains(&(macs as f64)),
            "DenseNet121 conv MACs {macs} outside published ~2.9G"
        );
    }

    #[test]
    fn channel_growth_and_transitions() {
        let m = densenet121_convs();
        // Block 1 ends at 64 + 6*32 = 256, transition halves to 128.
        let t1 = m.iter().find(|l| l.name == "transition1.conv").unwrap();
        assert_eq!(t1.in_channels, 256);
        assert_eq!(t1.out_channels, 128);
        // Final dense layer input: 512 + 15*32 = 992.
        let last = m.iter().rev().find(|l| l.name.contains("conv1")).unwrap();
        assert_eq!(last.in_channels, 992);
    }

    #[test]
    fn bottlenecks_have_fixed_width() {
        let m = densenet121_convs();
        for l in m.iter().filter(|l| l.name.contains("conv2")) {
            assert_eq!(l.in_channels, 128);
            assert_eq!(l.out_channels, 32);
            assert_eq!(l.kernel_h, 3);
        }
    }

    #[test]
    fn final_resolution_is_7x7() {
        let m = densenet121_convs();
        assert_eq!(m.last().unwrap().in_h, 7);
    }
}
