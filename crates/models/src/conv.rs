//! Convolution layers and their GEMM (im2col) mapping.

use indexmac_kernels::GemmDims;

/// One convolution layer of a CNN.
///
/// Non-square kernels and padding are supported (InceptionV3 uses 1x7
/// and 7x1 factorised convolutions); strides in these networks are
/// square.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayer {
    /// Human-readable layer name (e.g. `layer2.0.conv2`).
    pub name: String,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters).
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (both dimensions).
    pub stride: usize,
    /// Padding rows (top and bottom each).
    pub pad_h: usize,
    /// Padding columns (left and right each).
    pub pad_w: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
}

impl ConvLayer {
    /// Builds a square-kernel layer.
    #[allow(clippy::too_many_arguments)]
    pub fn square(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        Self {
            name: name.into(),
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            pad_h: pad,
            pad_w: pad,
            in_h,
            in_w,
        }
    }

    /// Output feature-map height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad_h - self.kernel_h) / self.stride + 1
    }

    /// Output feature-map width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad_w - self.kernel_w) / self.stride + 1
    }

    /// The im2col GEMM shape: `A` is `out_channels x (in_channels*Kh*Kw)`
    /// (the weights, structured-sparse after pruning), `B` is
    /// `(in_channels*Kh*Kw) x (out_h*out_w)` (the unrolled features).
    pub fn gemm(&self) -> GemmDims {
        GemmDims {
            rows: self.out_channels,
            inner: self.in_channels * self.kernel_h * self.kernel_w,
            cols: self.out_h() * self.out_w(),
        }
    }

    /// Dense multiply-accumulate count of this layer.
    pub fn macs(&self) -> u64 {
        self.gemm().dense_macs()
    }

    /// Whether this is a pointwise (1x1) convolution.
    pub fn is_pointwise(&self) -> bool {
        self.kernel_h == 1 && self.kernel_w == 1
    }
}

impl std::fmt::Display for ConvLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.gemm();
        write!(
            f,
            "{}: {}x{}x{}x{} s{} on {}x{} -> GEMM {}x{}x{}",
            self.name,
            self.out_channels,
            self.in_channels,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.in_h,
            self.in_w,
            g.rows,
            g.inner,
            g.cols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_conv1_dimensions() {
        // The canonical first layer: 7x7/2 pad 3 on 224x224 -> 112x112.
        let l = ConvLayer::square("conv1", 3, 64, 7, 2, 3, 224, 224);
        assert_eq!((l.out_h(), l.out_w()), (112, 112));
        let g = l.gemm();
        assert_eq!(g.rows, 64);
        assert_eq!(g.inner, 147);
        assert_eq!(g.cols, 12544);
        assert_eq!(l.macs(), 64 * 147 * 12544);
    }

    #[test]
    fn pointwise_detection() {
        let l = ConvLayer::square("pw", 64, 256, 1, 1, 0, 56, 56);
        assert!(l.is_pointwise());
        assert_eq!(l.gemm().inner, 64);
        assert_eq!((l.out_h(), l.out_w()), (56, 56));
    }

    #[test]
    fn asymmetric_kernel() {
        // Inception 1x7 conv with (0,3) padding keeps the map square.
        let l = ConvLayer {
            name: "c7".into(),
            in_channels: 128,
            out_channels: 128,
            kernel_h: 1,
            kernel_w: 7,
            stride: 1,
            pad_h: 0,
            pad_w: 3,
            in_h: 17,
            in_w: 17,
        };
        assert_eq!((l.out_h(), l.out_w()), (17, 17));
        assert_eq!(l.gemm().inner, 128 * 7);
    }

    #[test]
    fn stride_without_padding() {
        // Inception stem 3x3/2 without padding: 299 -> 149.
        let l = ConvLayer::square("s", 3, 32, 3, 2, 0, 299, 299);
        assert_eq!((l.out_h(), l.out_w()), (149, 149));
    }

    #[test]
    fn display_contains_gemm() {
        let l = ConvLayer::square("x", 3, 8, 3, 1, 1, 8, 8);
        assert!(l.to_string().contains("GEMM 8x27x64"));
    }
}
