//! End-to-end tests of the HTTP front end: route behaviour, and the
//! concurrency contract — N clients hammering `POST /sweep` on the
//! same grid get bit-identical results to a serial `run_grid`, while
//! coalescing ensures each distinct digest simulates exactly once.

use indexmac::experiment::ExperimentConfig;
use indexmac::record::{decode_cell_result, encode_cell_result};
use indexmac::sweep::{run_grid_serial, SweepGrid};
use indexmac_kernels::GemmDims;
use indexmac_service::{http, ResultStore, SweepService};
use indexmac_sparse::NmPattern;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("indexmac-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts a daemon + HTTP server on an ephemeral port. Returns the
/// bound address and the server thread (joins after `POST /shutdown`).
fn start_server(
    dir: &std::path::Path,
    workers: usize,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let cfg = ExperimentConfig::fast();
    let store = ResultStore::open(dir).unwrap();
    let service = SweepService::start(cfg, store, workers);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        http::serve(&service, listener).unwrap();
    });
    (addr, handle)
}

/// Minimal HTTP/1.1 client: one request, `Connection: close` response.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Value) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let payload = raw.split("\r\n\r\n").nth(1).expect("body separator");
    (status, serde_json::from_str(payload).expect("JSON body"))
}

fn grid_body() -> &'static str {
    r#"{"dims": ["4x32x16", "8x32x16"], "patterns": ["1:4"], "dataflows": ["b"], "base_seed": 99}"#
}

fn reference_grid() -> SweepGrid {
    SweepGrid::new(
        vec![NmPattern::P1_4],
        vec![
            GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            },
            GemmDims {
                rows: 8,
                inner: 32,
                cols: 16,
            },
        ],
    )
    .with_base_seed(99)
}

/// Renders the reference cells the way the server does, so equality is
/// a string comparison — bitwise, since float fields persist as
/// `f64::to_bits`.
fn reference_payloads() -> Vec<String> {
    let result = run_grid_serial(&reference_grid(), &ExperimentConfig::fast()).unwrap();
    result
        .cells
        .iter()
        .map(|c| serde_json::to_string(&encode_cell_result(c)).unwrap())
        .collect()
}

fn response_payloads(response: &Value) -> Vec<String> {
    response
        .get("cells")
        .and_then(Value::as_array)
        .expect("cells array")
        .iter()
        .map(|cell| {
            let result = cell.get("result").expect("result field");
            // Decode must succeed — the wire format is the store format.
            decode_cell_result(result).expect("decodable result");
            serde_json::to_string(result).unwrap()
        })
        .collect()
}

#[test]
fn routes_serve_health_stats_cells_and_errors() {
    let dir = temp_dir("routes");
    let (addr, server) = start_server(&dir, 2);

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, Some("ok")));

    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "PUT", "/healthz", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/cell/zz", "");
    assert_eq!(status, 400, "malformed digest");
    let (status, _) = request(addr, "GET", "/cell/00000000000000000000000000000000", "");
    assert_eq!(status, 404, "absent digest");
    let (status, _) = request(addr, "POST", "/sweep", "{\"dims\": []}");
    assert_eq!(status, 400, "empty grid");
    let (status, _) = request(addr, "POST", "/sweep", "not json");
    assert_eq!(status, 400, "malformed body");

    // One sweep, then its digests are individually addressable.
    let (status, response) = request(addr, "POST", "/sweep", grid_body());
    assert_eq!(status, 200);
    let cells = response.get("cells").and_then(Value::as_array).unwrap();
    assert_eq!(cells.len(), 2);
    assert_eq!(
        response_payloads(&response),
        reference_payloads(),
        "daemon results are bit-identical to a serial run_grid"
    );
    for cell in cells {
        assert_eq!(cell.get("status").and_then(Value::as_str), Some("computed"));
        let digest = cell.get("digest").and_then(Value::as_str).unwrap();
        let (status, stored) = request(addr, "GET", &format!("/cell/{digest}"), "");
        assert_eq!(status, 200);
        assert_eq!(
            serde_json::to_string(stored.get("result").unwrap()).unwrap(),
            serde_json::to_string(cell.get("result").unwrap()).unwrap(),
            "GET /cell returns the stored record verbatim"
        );
    }

    // Stats reflect the two simulations.
    let (status, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("computed").and_then(Value::as_u64), Some(2));

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_get_serial_results_with_single_simulation() {
    let dir = temp_dir("hammer");
    let (addr, server) = start_server(&dir, 3);
    let reference = reference_payloads();

    // N clients post the same 2-cell grid simultaneously. Coalescing
    // must collapse the overlap: 2 simulations total, not 2 * N.
    const CLIENTS: usize = 6;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, response) = request(addr, "POST", "/sweep", grid_body());
                assert_eq!(status, 200);
                response
            })
        })
        .collect();
    for client in clients {
        let response = client.join().unwrap();
        assert_eq!(
            response_payloads(&response),
            reference,
            "every concurrent client sees the serial run_grid result, bit for bit"
        );
    }

    // The same grid landed CLIENTS times; each distinct digest
    // simulated exactly once — the rest were store hits or coalesced
    // onto the in-flight simulation.
    let (status, stats) = request(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("computed").and_then(Value::as_u64), Some(2));
    assert_eq!(stats.get("misses").and_then(Value::as_u64), Some(2));
    let hits = stats.get("hits").and_then(Value::as_u64).unwrap();
    let coalesced = stats.get("coalesced").and_then(Value::as_u64).unwrap();
    assert_eq!(hits + coalesced, (CLIENTS as u64) * 2 - 2);

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
