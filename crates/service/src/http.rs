//! Minimal hand-rolled HTTP/1.1 front end over `std::net::TcpListener`
//! (crates.io is unreachable, so no tokio/hyper): a polling accept loop
//! handing each connection to a short-lived thread, `Connection: close`
//! semantics, bounded request sizes.
//!
//! # Routes
//!
//! | Route | Method | Behaviour |
//! |---|---|---|
//! | `/healthz` | GET | `200 ok` while the daemon is up |
//! | `/stats` | GET | hit/miss/coalesced/computed counters, queue depth, store stats |
//! | `/cell/<digest>` | GET | stored record for a 32-hex digest: `200` record, `404` miss, `400` malformed |
//! | `/sweep` | POST | JSON grid body → per-cell `{digest, status, result}`; misses simulate on the worker pool |
//! | `/shutdown` | POST | graceful drain: stop accepting, finish queued work, flush the store |
//!
//! The `POST /sweep` body mirrors [`SweepGrid`]:
//!
//! ```json
//! {
//!   "dims": ["8x64x32", "16x64x32"],
//!   "patterns": ["1:4", "2:4"],
//!   "dataflows": ["b"],
//!   "base_seed": 3564312612
//! }
//! ```
//!
//! `patterns`, `dataflows` and `base_seed` are optional (defaults: the
//! evaluated patterns, B-stationary, the campaign seed — the same
//! defaults as the CLI `sweep` command).

use crate::daemon::SweepService;
use indexmac::digest::Digest;
use indexmac::record::encode_cell_result;
use indexmac::sweep::SweepGrid;
use indexmac_kernels::{Dataflow, GemmDims};
use indexmac_sparse::NmPattern;
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on request body.
const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed request.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// A response under construction.
struct Response {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, reason: &'static str, value: &Value) -> Self {
        Self {
            status,
            reason,
            body: serde_json::to_string(value).expect("shim serialization is total"),
        }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Self::json(
            status,
            reason,
            &Value::object([("error", Value::Str(message.to_string()))]),
        )
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// Serves `service` on `listener` until a `POST /shutdown` arrives,
/// then drains the daemon and returns. Blocks the calling thread.
///
/// # Errors
///
/// Propagates listener configuration errors; per-connection errors are
/// contained to their connection.
pub fn serve(service: &Arc<SweepService>, listener: TcpListener) -> std::io::Result<()> {
    // Nonblocking accept + poll: `accept` must notice the shutdown
    // flag set by a handler thread, and std has no cross-platform
    // listener wakeup.
    listener.set_nonblocking(true)?;
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if service.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(service);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(&service, stream);
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    service.shutdown();
    Ok(())
}

fn handle_connection(service: &Arc<SweepService>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nonblocking(false);
    let response = match read_request(&mut stream) {
        Ok(request) => route(service, &request),
        Err(message) => Response::error(400, "Bad Request", &message),
    };
    let _ = response.write_to(&mut stream);
}

/// Reads one request: request line, headers (only `Content-Length` is
/// interpreted), then exactly the declared body.
fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| "request line has no path".to_string())?
        .to_string();

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("reading header: {e}"))?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad Content-Length: {e}"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("request body too large".into());
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading body: {e}"))?;
    Ok(Request { method, path, body })
}

fn route(service: &Arc<SweepService>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "OK", &Value::Str("ok".into())),
        ("GET", "/stats") => stats_response(service),
        ("GET", path) if path.starts_with("/cell/") => {
            cell_response(service, &path["/cell/".len()..])
        }
        ("POST", "/sweep") => sweep_response(service, &request.body),
        ("POST", "/shutdown") => {
            // Flag first; the accept loop drains after responding.
            service.request_shutdown();
            Response::json(200, "OK", &Value::Str("draining".into()))
        }
        ("GET" | "POST", _) => Response::error(404, "Not Found", "no such route"),
        _ => Response::error(405, "Method Not Allowed", "use GET or POST"),
    }
}

fn stats_response(service: &Arc<SweepService>) -> Response {
    let stats = service.stats();
    Response::json(
        200,
        "OK",
        &Value::object([
            ("hits", Value::UInt(stats.hits)),
            ("misses", Value::UInt(stats.misses)),
            ("coalesced", Value::UInt(stats.coalesced)),
            ("computed", Value::UInt(stats.computed)),
            ("queue_depth", Value::UInt(stats.queue_depth as u64)),
            (
                "store",
                Value::object([
                    ("entries", Value::UInt(stats.store.entries as u64)),
                    ("log_bytes", Value::UInt(stats.store.log_bytes)),
                    ("lru_entries", Value::UInt(stats.store.lru_entries as u64)),
                    ("lru_hits", Value::UInt(stats.store.lru_hits)),
                    ("disk_hits", Value::UInt(stats.store.disk_hits)),
                    ("misses", Value::UInt(stats.store.misses)),
                    ("recovered_bytes", Value::UInt(stats.store.recovered_bytes)),
                ]),
            ),
        ]),
    )
}

fn cell_response(service: &Arc<SweepService>, digest_hex: &str) -> Response {
    let digest: Digest = match digest_hex.parse() {
        Ok(d) => d,
        Err(e) => return Response::error(400, "Bad Request", &e),
    };
    match service.lookup(digest) {
        Some(result) => Response::json(
            200,
            "OK",
            &Value::object([
                ("digest", Value::Str(digest.to_string())),
                ("result", encode_cell_result(&result)),
            ]),
        ),
        None => Response::error(404, "Not Found", "digest not in store"),
    }
}

fn sweep_response(service: &Arc<SweepService>, body: &[u8]) -> Response {
    let grid = match parse_grid(body, service) {
        Ok(grid) => grid,
        Err(message) => return Response::error(400, "Bad Request", &message),
    };
    match service.sweep_grid(&grid) {
        Ok((result, statuses)) => {
            let cells: Vec<Value> = result
                .cells
                .iter()
                .zip(&statuses)
                .zip(grid.cells())
                .map(|((cell_result, status), cell)| {
                    let digest = indexmac::digest::config_digest(&cell, service.config());
                    Value::object([
                        ("digest", Value::Str(digest.to_string())),
                        ("status", Value::Str(status.name().into())),
                        ("result", encode_cell_result(cell_result)),
                    ])
                })
                .collect();
            Response::json(
                200,
                "OK",
                &Value::object([
                    ("base_seed", Value::UInt(result.base_seed)),
                    ("cells", Value::Array(cells)),
                ]),
            )
        }
        Err(message) => Response::error(500, "Internal Server Error", &message),
    }
}

/// Parses a `POST /sweep` body into a [`SweepGrid`].
fn parse_grid(body: &[u8], service: &Arc<SweepService>) -> Result<SweepGrid, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    let v = serde_json::from_str(text).map_err(|e| format!("body is not JSON: {e}"))?;

    let dims_field = v
        .get("dims")
        .and_then(Value::as_array)
        .ok_or("missing 'dims' array")?;
    if dims_field.is_empty() {
        return Err("'dims' must not be empty".into());
    }
    let mut dims = Vec::with_capacity(dims_field.len());
    for d in dims_field {
        dims.push(parse_dims_value(d)?);
    }

    let patterns = match v.get("patterns") {
        None => NmPattern::EVALUATED.to_vec(),
        Some(field) => {
            let items = field.as_array().ok_or("'patterns' must be an array")?;
            let mut patterns = Vec::with_capacity(items.len());
            for p in items {
                patterns.push(parse_pattern_value(p)?);
            }
            patterns
        }
    };

    let dataflows = match v.get("dataflows") {
        None => vec![Dataflow::BStationary],
        Some(field) => {
            let items = field.as_array().ok_or("'dataflows' must be an array")?;
            let mut flows = Vec::with_capacity(items.len());
            for f in items {
                flows.push(parse_dataflow_value(f)?);
            }
            flows
        }
    };

    let base_seed = match v.get("base_seed") {
        None => service.config().seed,
        Some(s) => s
            .as_u64()
            .ok_or("'base_seed' must be an unsigned integer")?,
    };

    Ok(SweepGrid {
        patterns,
        dims,
        dataflows,
        base_seed,
    })
}

/// `"RxKxN"` string form of one GEMM shape.
fn parse_dims_value(v: &Value) -> Result<GemmDims, String> {
    let s = v.as_str().ok_or("dims entries must be 'RxKxN' strings")?;
    let parts: Vec<&str> = s.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("'{s}' is not RxKxN"));
    }
    let parse = |p: &str| -> Result<usize, String> {
        let n: usize = p
            .parse()
            .map_err(|_| format!("'{s}': '{p}' is not a positive integer"))?;
        if n == 0 {
            return Err(format!("'{s}': dimensions must be positive"));
        }
        Ok(n)
    };
    Ok(GemmDims {
        rows: parse(parts[0])?,
        inner: parse(parts[1])?,
        cols: parse(parts[2])?,
    })
}

/// `"N:M"` string form of a sparsity pattern.
fn parse_pattern_value(v: &Value) -> Result<NmPattern, String> {
    let s = v.as_str().ok_or("patterns entries must be 'N:M' strings")?;
    let (n, m) = s
        .split_once(':')
        .ok_or_else(|| format!("'{s}' is not N:M"))?;
    let n: usize = n.parse().map_err(|_| format!("'{s}' is not N:M"))?;
    let m: usize = m.parse().map_err(|_| format!("'{s}' is not N:M"))?;
    NmPattern::new(n, m).map_err(|e| e.to_string())
}

/// `"a"`/`"b"`/`"c"` (or `"all"` is *not* accepted here — expand
/// client-side) dataflow tag.
fn parse_dataflow_value(v: &Value) -> Result<Dataflow, String> {
    match v.as_str() {
        Some("a") => Ok(Dataflow::AStationary),
        Some("b") => Ok(Dataflow::BStationary),
        Some("c") => Ok(Dataflow::CStationary),
        _ => Err("dataflow entries must be \"a\", \"b\" or \"c\"".into()),
    }
}
