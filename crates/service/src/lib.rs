//! Sweep service of the IndexMAC reproduction: a persistent
//! content-addressed result store, an asynchronous job-queue daemon
//! with request coalescing, and a dependency-free HTTP/1.1 API.
//!
//! Sweep campaigns over the simulator are embarrassingly cacheable:
//! every cell is a pure function of `(SweepCell, ExperimentConfig)`,
//! and real campaigns (widening a grid axis, re-plotting, CI re-runs)
//! re-request mostly cells that have already been simulated. This
//! crate makes that reuse automatic:
//!
//! - [`store::ResultStore`] — an append-only log + index under a
//!   `--store-dir`, keyed by [`indexmac::config_digest`], with an
//!   in-memory LRU front. Crash-safe: a torn or corrupt log tail is
//!   truncated on open and the affected digests degrade to misses.
//! - [`daemon::SweepService`] — a bounded work queue drained by a
//!   worker pool; concurrent requests for the same digest coalesce
//!   onto one simulation.
//! - [`http`] — `GET /cell/<digest>`, `POST /sweep`, `GET /stats`
//!   over `std::net::TcpListener` (the registry is unreachable in the
//!   build environment, so no hyper/tokio).
//! - [`run_grid_with_store`] — the synchronous path behind
//!   `indexmac-cli sweep --store-dir`: serve what the store has,
//!   simulate only the misses, persist them.
//!
//! The `indexmac-cli` binary lives in this crate (it grew `serve` and
//! `--store-dir`, which need the store and daemon; the core crate must
//! not depend back on this one).

pub mod daemon;
pub mod http;
pub mod store;

pub use daemon::{CellStatus, DaemonStats, SweepService};
pub use store::{ResultStore, StoreStats};

use indexmac::config_digest;
use indexmac::experiment::{ExperimentConfig, ExperimentError};
use indexmac::sweep::{run_cells, CellResult, SweepGrid, SweepResult};

/// [`indexmac::sweep::run_grid`] with a persistent store in front:
/// cells whose digest is already stored are served from disk, the rest
/// are simulated in parallel on the current rayon pool and persisted.
/// Results merge back in grid order, so the output is bit-identical to
/// a fresh `run_grid` regardless of the hit/miss split.
///
/// Returns the sweep result plus the `(hits, misses)` split.
///
/// # Errors
///
/// Fails with the first simulation error in grid order. Store I/O
/// errors on `put` are deliberately non-fatal (the sweep already has
/// the results in memory); they surface on the final flush as a
/// warning in the CLI, not here.
pub fn run_grid_with_store(
    grid: &SweepGrid,
    cfg: &ExperimentConfig,
    store: &mut ResultStore,
) -> Result<(SweepResult, usize, usize), ExperimentError> {
    let cells = grid.cells();
    let mut merged: Vec<Option<CellResult>> = vec![None; cells.len()];
    let mut missing = Vec::new();
    for (i, cell) in cells.into_iter().enumerate() {
        let digest = config_digest(&cell, cfg);
        match store.get(digest) {
            Some(result) => merged[i] = Some(result),
            None => missing.push((i, digest, cell)),
        }
    }
    let hits = merged.len() - missing.len();
    let misses = missing.len();

    let fresh = run_cells(missing.iter().map(|(_, _, c)| *c).collect(), cfg)?;
    for ((i, digest, _), result) in missing.into_iter().zip(fresh) {
        let _ = store.put(digest, &result);
        merged[i] = Some(result);
    }

    Ok((
        SweepResult {
            base_seed: grid.base_seed,
            threads: rayon::current_num_threads(),
            precision: cfg.precision,
            timing: cfg.sim.timing,
            cells: merged.into_iter().map(Option::unwrap).collect(),
        },
        hits,
        misses,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac::sweep::run_grid;
    use indexmac_kernels::GemmDims;
    use indexmac_sparse::NmPattern;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("indexmac-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new(
            vec![NmPattern::P1_4],
            vec![
                GemmDims {
                    rows: 4,
                    inner: 32,
                    cols: 16,
                },
                GemmDims {
                    rows: 8,
                    inner: 32,
                    cols: 16,
                },
            ],
        )
    }

    #[test]
    fn store_backed_sweep_is_bit_identical_and_reuses_results() {
        let dir = temp_dir("grid");
        let cfg = ExperimentConfig::fast();
        let grid = small_grid();
        let reference = run_grid(&grid, &cfg).unwrap();

        let mut store = ResultStore::open(&dir).unwrap();
        let (cold, hits, misses) = run_grid_with_store(&grid, &cfg, &mut store).unwrap();
        assert_eq!((hits, misses), (0, 2));
        assert_eq!(cold.cells, reference.cells);

        // Second run: all hits, still identical, nothing simulated.
        let (warm, hits, misses) = run_grid_with_store(&grid, &cfg, &mut store).unwrap();
        assert_eq!((hits, misses), (2, 0));
        assert_eq!(warm.cells, reference.cells);

        // Widening the grid re-simulates only the new cell.
        let mut wider = small_grid();
        wider.dims.push(GemmDims {
            rows: 16,
            inner: 32,
            cols: 16,
        });
        let (_, hits, misses) = run_grid_with_store(&wider, &cfg, &mut store).unwrap();
        assert_eq!((hits, misses), (2, 1));

        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
