//! Persistent content-addressed result store: an append-only log plus
//! an index file under a store directory, keyed by
//! [`config_digest`](indexmac::digest::config_digest), with an
//! in-memory LRU front.
//!
//! # On-disk format
//!
//! `results.log` is a sequence of self-framing records, one per line:
//!
//! ```text
//! <digest:32 hex> <payload_len:decimal> <fnv64:16 hex> <payload JSON>\n
//! ```
//!
//! The payload is the compact-JSON [`encode_cell_result`] record; the
//! checksum is FNV-1a-64 over the payload bytes. Appends go straight to
//! the log (append-only — a record is never rewritten in place), so a
//! crash can only damage the *tail*. Recovery on open validates records
//! front to back and truncates the log at the first bad frame: a
//! clipped or corrupt tail costs exactly the unflushed entries, which
//! become cache misses — never a panic, never a wrong result.
//!
//! `index.json` is a rebuildable acceleration structure:
//! `{"version":1,"log_bytes":N,"entries":[["<digest>",offset,len],…]}`,
//! written atomically (temp file + rename). On open, an index whose
//! `log_bytes` matches a prefix of the log skips re-validating that
//! prefix; the tail past `log_bytes` (appends that raced a crash) is
//! scanned and re-indexed. Any mismatch falls back to a full scan — the
//! log is always the ground truth.

use indexmac::digest::Digest;
use indexmac::record::{decode_cell_result, encode_cell_result};
use indexmac::sweep::CellResult;
use serde::Value;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Default capacity of the in-memory LRU front (decoded results).
pub const DEFAULT_LRU_CAPACITY: usize = 1024;

/// How many appends between automatic index rewrites. The index is an
/// accelerator, not a durability requirement, so batching is safe.
const INDEX_EVERY_PUTS: usize = 256;

/// Counters the service's `GET /stats` route reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Gets served from the in-memory LRU front.
    pub lru_hits: u64,
    /// Gets served by reading + decoding a log record.
    pub disk_hits: u64,
    /// Gets that found nothing (or an undecodable record).
    pub misses: u64,
    /// Records appended this session.
    pub puts: u64,
    /// Records currently indexed.
    pub entries: usize,
    /// Results currently resident in the LRU front.
    pub lru_entries: usize,
    /// Bytes in the append-only log.
    pub log_bytes: u64,
    /// Bytes truncated from a damaged log tail during recovery.
    pub recovered_bytes: u64,
}

impl StoreStats {
    /// Total gets served without simulating (LRU + disk).
    pub fn hits(&self) -> u64 {
        self.lru_hits + self.disk_hits
    }
}

/// FNV-1a-64 over `bytes` — the per-record checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// In-memory LRU front: digest → decoded result, evicting the
/// least-recently-used entry past `capacity`. Linear-scan eviction is
/// fine at the default capacity (eviction is rare and off the hot
/// path; hits are a `HashMap` probe plus a tick bump).
struct LruFront {
    entries: HashMap<Digest, (CellResult, u64)>,
    capacity: usize,
    tick: u64,
}

impl LruFront {
    fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    fn get(&mut self, digest: Digest) -> Option<CellResult> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&digest).map(|(result, stamp)| {
            *stamp = tick;
            result.clone()
        })
    }

    fn insert(&mut self, digest: Digest, result: CellResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.entries.insert(digest, (result, self.tick));
        if self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(d, _)| *d)
                .expect("non-empty map");
            self.entries.remove(&oldest);
        }
    }
}

/// digest → (payload offset, payload length) into the log.
type LogIndex = HashMap<Digest, (u64, u32)>;

/// The persistent store: log + index + LRU front. Not internally
/// synchronised — the daemon wraps it in a `Mutex`.
pub struct ResultStore {
    dir: PathBuf,
    /// Append handle, always positioned at the log tail.
    log: File,
    log_bytes: u64,
    index: LogIndex,
    lru: LruFront,
    puts_since_index: usize,
    stats: StoreStats,
}

impl ResultStore {
    /// Opens (creating if absent) the store under `dir`, recovering
    /// from any damaged log tail.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (permissions, full disk). Damaged
    /// *content* is never an error: corrupt records are truncated away
    /// and surface as cache misses.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with_lru(dir, DEFAULT_LRU_CAPACITY)
    }

    /// [`ResultStore::open`] with an explicit LRU capacity (0 disables
    /// the memory front — every hit reads the log).
    pub fn open_with_lru(dir: impl Into<PathBuf>, lru_capacity: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let log_path = dir.join("results.log");
        let mut log = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&log_path)?;

        let mut bytes = Vec::new();
        log.seek(SeekFrom::Start(0))?;
        log.read_to_end(&mut bytes)?;

        let mut store = Self {
            dir,
            log,
            log_bytes: 0,
            index: HashMap::new(),
            lru: LruFront::new(lru_capacity),
            puts_since_index: 0,
            stats: StoreStats::default(),
        };

        // Fast path: trust the index over the log prefix it covers.
        let mut scan_from = 0u64;
        if let Some((indexed_bytes, entries)) = store.load_index() {
            if indexed_bytes as usize <= bytes.len() {
                store.index = entries;
                scan_from = indexed_bytes;
            }
        }
        let good_end = store.scan_log(&bytes, scan_from);
        if (good_end as usize) < bytes.len() {
            // Damaged tail: truncate it away so the log is clean for
            // future appends, and remember how much was lost.
            store.stats.recovered_bytes = bytes.len() as u64 - good_end;
            store.log.set_len(good_end)?;
            store.log.seek(SeekFrom::End(0))?;
        }
        store.log_bytes = good_end;
        if scan_from != good_end || store.stats.recovered_bytes > 0 {
            store.write_index()?;
        }
        store.refresh_stats();
        Ok(store)
    }

    /// Validates log records in `bytes` starting at `from`, adding each
    /// good record to the index. Returns the end offset of the last
    /// good record (everything past it is a damaged tail).
    fn scan_log(&mut self, bytes: &[u8], from: u64) -> u64 {
        let mut pos = from as usize;
        loop {
            match parse_record(bytes, pos) {
                Some((digest, payload_off, payload_len, next)) => {
                    self.index
                        .insert(digest, (payload_off as u64, payload_len as u32));
                    pos = next;
                }
                None => return pos as u64,
            }
        }
    }

    fn index_path(&self) -> PathBuf {
        self.dir.join("index.json")
    }

    /// Path of the append-only log (exposed for tests and tooling).
    pub fn log_path(&self) -> PathBuf {
        self.dir.join("results.log")
    }

    /// Parses `index.json`; `None` for missing/corrupt/mismatched
    /// versions (the caller falls back to a full log scan).
    fn load_index(&self) -> Option<(u64, LogIndex)> {
        let text = fs::read_to_string(self.index_path()).ok()?;
        let v = serde_json::from_str(&text).ok()?;
        if v.get("version")?.as_u64()? != 1 {
            return None;
        }
        let log_bytes = v.get("log_bytes")?.as_u64()?;
        let mut entries = HashMap::new();
        for entry in v.get("entries")?.as_array()? {
            let row = entry.as_array()?;
            if row.len() != 3 {
                return None;
            }
            let digest: Digest = row[0].as_str()?.parse().ok()?;
            let offset = row[1].as_u64()?;
            let len = u32::try_from(row[2].as_u64()?).ok()?;
            if offset + u64::from(len) > log_bytes {
                return None;
            }
            entries.insert(digest, (offset, len));
        }
        Some((log_bytes, entries))
    }

    /// Atomically rewrites `index.json` (temp file + rename), so a
    /// crash mid-write leaves either the old or the new index — never
    /// a torn one.
    fn write_index(&mut self) -> std::io::Result<()> {
        let mut entries: Vec<(&Digest, &(u64, u32))> = self.index.iter().collect();
        entries.sort_by_key(|(_, (offset, _))| *offset);
        let value = Value::object([
            ("version", Value::UInt(1)),
            ("log_bytes", Value::UInt(self.log_bytes)),
            (
                "entries",
                Value::Array(
                    entries
                        .into_iter()
                        .map(|(digest, (offset, len))| {
                            Value::Array(vec![
                                Value::Str(digest.to_string()),
                                Value::UInt(*offset),
                                Value::UInt(u64::from(*len)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let text = serde_json::to_string(&value).expect("shim serialization is total");
        let tmp = self.dir.join("index.json.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, self.index_path())?;
        self.puts_since_index = 0;
        Ok(())
    }

    /// Looks `digest` up: LRU front first, then the log. A record that
    /// fails checksum or decode is a miss (the store never panics on
    /// damaged content).
    pub fn get(&mut self, digest: Digest) -> Option<CellResult> {
        if let Some(result) = self.lru.get(digest) {
            self.stats.lru_hits += 1;
            return Some(result);
        }
        let Some(&(offset, len)) = self.index.get(&digest) else {
            self.stats.misses += 1;
            return None;
        };
        match self.read_record(offset, len) {
            Some(result) => {
                self.stats.disk_hits += 1;
                self.lru.insert(digest, result.clone());
                self.refresh_stats();
                Some(result)
            }
            None => {
                // Undecodable despite being indexed (e.g. version skew):
                // drop the entry so later gets miss cheaply.
                self.index.remove(&digest);
                self.stats.misses += 1;
                self.refresh_stats();
                None
            }
        }
    }

    /// Reads, checksums and decodes one payload from the log without
    /// moving the append cursor. The frame checksum sits in the 17
    /// bytes before the payload (`<fnv64:16hex><space>`), so indexed
    /// reads re-verify integrity even when the open-time scan trusted
    /// the index over this log prefix.
    fn read_record(&mut self, offset: u64, len: u32) -> Option<CellResult> {
        const CHECK: usize = 17;
        if offset < CHECK as u64 {
            return None;
        }
        let mut buf = vec![0u8; CHECK + len as usize];
        let end = self.log.seek(SeekFrom::End(0)).ok()?;
        self.log.seek(SeekFrom::Start(offset - CHECK as u64)).ok()?;
        let read = self.log.read_exact(&mut buf);
        self.log.seek(SeekFrom::Start(end)).ok()?;
        read.ok()?;
        let stored = std::str::from_utf8(&buf[..CHECK - 1]).ok()?;
        let stored = u64::from_str_radix(stored, 16).ok()?;
        let payload = &buf[CHECK..];
        if fnv64(payload) != stored {
            return None;
        }
        let text = std::str::from_utf8(payload).ok()?;
        decode_cell_result(&serde_json::from_str(text).ok()?).ok()
    }

    /// Whether `digest` is present (indexed) without touching LRU order
    /// or stats.
    pub fn contains(&self, digest: Digest) -> bool {
        self.index.contains_key(&digest)
    }

    /// Appends one result under `digest` and indexes it. Overwriting an
    /// existing digest appends a new record and repoints the index (the
    /// old record becomes dead weight in the log — append-only).
    ///
    /// # Errors
    ///
    /// Propagates log/index write failures.
    pub fn put(&mut self, digest: Digest, result: &CellResult) -> std::io::Result<()> {
        let payload = serde_json::to_string(&encode_cell_result(result))
            .expect("shim serialization is total");
        let payload = payload.as_bytes();
        let header = format!("{digest} {} {:016x} ", payload.len(), fnv64(payload));
        let payload_offset = self.log_bytes + header.len() as u64;

        let mut frame = Vec::with_capacity(header.len() + payload.len() + 1);
        frame.extend_from_slice(header.as_bytes());
        frame.extend_from_slice(payload);
        frame.push(b'\n');
        self.log.write_all(&frame)?;
        self.log_bytes += frame.len() as u64;

        self.index
            .insert(digest, (payload_offset, payload.len() as u32));
        self.lru.insert(digest, result.clone());
        self.stats.puts += 1;
        self.puts_since_index += 1;
        if self.puts_since_index >= INDEX_EVERY_PUTS {
            self.write_index()?;
        }
        self.refresh_stats();
        Ok(())
    }

    /// Flushes the log to the OS and rewrites the index.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.log.sync_all()?;
        self.write_index()
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn refresh_stats(&mut self) {
        self.stats.entries = self.index.len();
        self.stats.lru_entries = self.lru.entries.len();
        self.stats.log_bytes = self.log_bytes;
    }
}

impl Drop for ResultStore {
    fn drop(&mut self) {
        // Best-effort index persistence; the log is already durable.
        let _ = self.flush();
    }
}

/// Parses one framed record at `pos`. Returns
/// `(digest, payload_offset, payload_len, next_record_offset)` or
/// `None` if the bytes at `pos` are not a complete valid record.
fn parse_record(bytes: &[u8], pos: usize) -> Option<(Digest, usize, usize, usize)> {
    // Header: 32 hex + ' ' + decimal len + ' ' + 16 hex + ' '.
    let digest_end = pos.checked_add(32)?;
    let digest: Digest = std::str::from_utf8(bytes.get(pos..digest_end)?)
        .ok()?
        .parse()
        .ok()?;
    if bytes.get(digest_end) != Some(&b' ') {
        return None;
    }
    let len_start = digest_end + 1;
    let len_end = len_start + bytes.get(len_start..)?.iter().position(|&b| b == b' ')?;
    let payload_len: usize = std::str::from_utf8(&bytes[len_start..len_end])
        .ok()?
        .parse()
        .ok()?;
    let sum_start = len_end + 1;
    let sum_end = sum_start.checked_add(16)?;
    let checksum = u64::from_str_radix(
        std::str::from_utf8(bytes.get(sum_start..sum_end)?).ok()?,
        16,
    )
    .ok()?;
    if bytes.get(sum_end) != Some(&b' ') {
        return None;
    }
    let payload_start = sum_end + 1;
    let payload_end = payload_start.checked_add(payload_len)?;
    let payload = bytes.get(payload_start..payload_end)?;
    if bytes.get(payload_end) != Some(&b'\n') {
        return None;
    }
    if fnv64(payload) != checksum {
        return None;
    }
    Some((digest, payload_start, payload_len, payload_end + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac::digest::config_digest;
    use indexmac::experiment::ExperimentConfig;
    use indexmac::kernels::GemmDims;
    use indexmac::sparse::NmPattern;
    use indexmac::sweep::{run_cell, SweepGrid};

    /// A unique temp dir per test (no tempfile crate offline).
    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("indexmac-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(count: usize) -> Vec<(Digest, CellResult)> {
        let cfg = ExperimentConfig::fast();
        let grid = SweepGrid::new(
            NmPattern::EVALUATED.to_vec(),
            (0..count.div_ceil(2))
                .map(|i| GemmDims {
                    rows: 4 + i,
                    inner: 32,
                    cols: 16,
                })
                .collect(),
        );
        grid.cells()
            .into_iter()
            .take(count)
            .map(|cell| (config_digest(&cell, &cfg), run_cell(cell, &cfg).unwrap()))
            .collect()
    }

    #[test]
    fn put_get_round_trip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let samples = sample(4);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            assert!(store.is_empty());
            for (digest, result) in &samples {
                store.put(*digest, result).unwrap();
            }
            assert_eq!(store.len(), 4);
            for (digest, result) in &samples {
                assert_eq!(store.get(*digest).as_ref(), Some(result));
            }
            assert_eq!(store.stats().lru_hits, 4, "warm gets hit the LRU");
        }
        // Reopen: everything survives, served from disk first.
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 4);
        for (digest, result) in &samples {
            assert_eq!(store.get(*digest).as_ref(), Some(result));
        }
        assert_eq!(store.stats().disk_hits, 4);
        // Second pass is LRU-warm.
        for (digest, _) in &samples {
            assert!(store.get(*digest).is_some());
        }
        assert_eq!(store.stats().lru_hits, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clipped_log_tail_is_a_miss_not_a_panic() {
        let dir = temp_dir("clipped");
        let samples = sample(3);
        let log_path;
        {
            let mut store = ResultStore::open(&dir).unwrap();
            for (digest, result) in &samples {
                store.put(*digest, result).unwrap();
            }
            log_path = store.log_path();
        }
        // Clip the last record mid-payload — a torn final write.
        let bytes = fs::read(&log_path).unwrap();
        fs::write(&log_path, &bytes[..bytes.len() - 40]).unwrap();

        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "clipped record drops out of the index");
        assert!(store.stats().recovered_bytes > 0);
        assert!(store.get(samples[0].0).is_some());
        assert!(store.get(samples[1].0).is_some());
        assert_eq!(store.get(samples[2].0), None, "clipped tail is a miss");

        // The damaged tail was truncated: appends work and survive a
        // further reopen.
        store.put(samples[2].0, &samples[2].1).unwrap();
        drop(store);
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(samples[2].0).as_ref(), Some(&samples[2].1));
        assert_eq!(store.stats().recovered_bytes, 0, "clean log after repair");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_byte_is_dropped_by_checksum() {
        let dir = temp_dir("corrupt");
        let samples = sample(2);
        let log_path;
        {
            let mut store = ResultStore::open(&dir).unwrap();
            for (digest, result) in &samples {
                store.put(*digest, result).unwrap();
            }
            log_path = store.log_path();
        }
        let mut bytes = fs::read(&log_path).unwrap();
        // Flip one payload byte of the *second* record (past the first
        // record's full frame).
        let second_start = bytes
            .windows(1)
            .enumerate()
            .filter(|(_, w)| w[0] == b'\n')
            .map(|(i, _)| i + 1)
            .next()
            .unwrap();
        let target = second_start + 60;
        bytes[target] ^= 0x01;
        fs::write(&log_path, &bytes).unwrap();

        // Open trusts the index over its covered prefix, so both
        // records are still *indexed* — but reading the damaged one
        // fails its checksum and degrades to a miss.
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "index still covers both records");
        assert!(store.get(samples[0].0).is_some());
        assert_eq!(store.get(samples[1].0), None, "checksum rejects the flip");
        assert_eq!(store.len(), 1, "the damaged record was de-indexed");

        // A fresh open with no index (full log scan) rejects it eagerly.
        fs::remove_file(dir.join("index.json")).unwrap();
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "log scan stops at the bad frame");
        assert_eq!(store.get(samples[1].0), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_index_falls_back_to_log_scan() {
        let dir = temp_dir("staleindex");
        let samples = sample(3);
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.put(samples[0].0, &samples[0].1).unwrap();
        } // Drop writes index covering 1 record.
        {
            let mut store = ResultStore::open(&dir).unwrap();
            store.put(samples[1].0, &samples[1].1).unwrap();
            store.put(samples[2].0, &samples[2].1).unwrap();
            // Simulate a crash before the index rewrite: drop would
            // rewrite it, so clobber the index with the stale copy after.
            let stale = fs::read(dir.join("index.json")).unwrap();
            store.flush().unwrap();
            drop(store);
            fs::write(dir.join("index.json"), stale).unwrap();
        }
        // Index covers 1 record; the log has 3. The tail past the
        // indexed prefix is scanned back in.
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        for (digest, result) in &samples {
            assert_eq!(store.get(*digest).as_ref(), Some(result));
        }
        // Garbage index: full scan still recovers everything.
        fs::write(dir.join("index.json"), b"not json").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_front_evicts_least_recently_used() {
        let dir = temp_dir("lru");
        let samples = sample(3);
        let mut store = ResultStore::open_with_lru(&dir, 2).unwrap();
        for (digest, result) in &samples {
            store.put(*digest, result).unwrap();
        }
        assert_eq!(store.stats().lru_entries, 2);
        // Samples 1 and 2 are resident; 0 was evicted.
        assert!(store.get(samples[1].0).is_some());
        assert_eq!(store.stats().lru_hits, 1);
        assert!(store.get(samples[0].0).is_some(), "still served from disk");
        assert_eq!(store.stats().disk_hits, 1);
        // Reading 0 re-promoted it, evicting 2 (LRU).
        assert!(store.get(samples[2].0).is_some());
        assert_eq!(store.stats().disk_hits, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_stores_open_clean() {
        let dir = temp_dir("empty");
        let mut store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let absent = config_digest(
            &SweepGrid::new(
                vec![NmPattern::P1_4],
                vec![GemmDims {
                    rows: 4,
                    inner: 32,
                    cols: 16,
                }],
            )
            .cells()[0],
            &ExperimentConfig::fast(),
        );
        assert_eq!(store.get(absent), None);
        assert_eq!(store.stats().misses, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
