//! Command-line front-end for the IndexMAC reproduction.
//!
//! ```text
//! indexmac-cli config
//! indexmac-cli gemm --rows 64 --inner 256 --cols 128 --pattern 2:4
//! indexmac-cli gemm --rows 64 --inner 256 --cols 128 --algorithm indexmac
//! indexmac-cli layer --model resnet50 --name layer2.0.conv2 --pattern 1:4
//! indexmac-cli layer --model bert-base --name block0.ffn.up
//! indexmac-cli model --preset bert-base --seq-len 128 --pattern 2:4
//! indexmac-cli model --preset gpt2-small --sew 8
//! indexmac-cli list --model inceptionv3
//! indexmac-cli lint
//! indexmac-cli lint --algorithm indexmac2 --sew 8 --format json
//! indexmac-cli sweep --dims 16x128x32,32x256x64 --patterns 1:4,2:4 \
//!     --dataflows all --threads 8 --format json
//! indexmac-cli sweep --dims 16x128x32 --store-dir /var/tmp/indexmac-store
//! indexmac-cli serve --store-dir /var/tmp/indexmac-store --addr 127.0.0.1:0
//! ```

use indexmac::analysis::analyze;
use indexmac::experiment::{
    compare_gemm, compare_model, lint_gemm, run_gemm, Algorithm, ExperimentConfig, LintResult,
    Precision,
};
use indexmac::kernels::{Dataflow, GemmDims, KernelParams};
use indexmac::sparse::NmPattern;
use indexmac::sweep::{run_grid, SweepGrid};
use indexmac::table::{fmt_pair, fmt_pct, fmt_speedup, Table};
use indexmac::vpu::{SimConfig, TimingKind};
use indexmac_models::{
    densenet121, inception_v3, resnet50, GemmCaps, Model, ModelFamily, TransformerConfig,
};
use indexmac_service::{run_grid_with_store, ResultStore, SweepService};
use std::process::ExitCode;

/// Parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    /// Print the Table I machine configuration.
    Config,
    /// Run/compare kernels on an explicit GEMM shape.
    Gemm {
        dims: GemmDims,
        pattern: NmPattern,
        algorithm: Option<Algorithm>,
        unroll: usize,
        tile_rows: usize,
        lmul: usize,
        sew: Precision,
        seed: Option<u64>,
        max_instructions: Option<u64>,
        shard_size: Option<u64>,
        timing: TimingKind,
    },
    /// Run the comparison on a named model layer (CNN conv or
    /// transformer projection).
    Layer {
        model: String,
        name: String,
        pattern: NmPattern,
        seed: Option<u64>,
    },
    /// Run the whole-network comparison for a preset and print the
    /// per-layer table plus aggregates.
    Model {
        preset: String,
        pattern: NmPattern,
        seq_len: Option<usize>,
        sew: Option<Precision>,
        caps: GemmCaps,
        seed: Option<u64>,
        max_instructions: Option<u64>,
        shard_size: Option<u64>,
        timing: TimingKind,
    },
    /// List the GEMM layers of a model.
    List { model: String },
    /// Run the static µop-program analyzer over kernel builds and print
    /// the diagnostics (empty output = every config is provably
    /// fault-free and mints a check-elision token).
    Lint {
        /// `None` lints every shipped kernel.
        algorithm: Option<Algorithm>,
        dims: GemmDims,
        patterns: Vec<NmPattern>,
        /// `None` sweeps every precision the kernel supports.
        sew: Option<Precision>,
        /// `None` sweeps every grouping the kernel/precision supports.
        lmul: Option<usize>,
        unroll: usize,
        tile_rows: usize,
        format: OutputFormat,
    },
    /// Fan comparisons over a (pattern x dims x dataflow) grid in parallel.
    Sweep {
        dims: Vec<GemmDims>,
        patterns: Vec<NmPattern>,
        dataflows: Vec<Dataflow>,
        seed: Option<u64>,
        threads: Option<usize>,
        format: OutputFormat,
        /// The proposed side of every comparison (default: indexmac).
        algorithm: Algorithm,
        /// The baseline side of every comparison (default: rowwise).
        baseline: Algorithm,
        /// Register grouping for indexmac2 cells.
        lmul: usize,
        /// Element precision (SEW) of every cell.
        sew: Precision,
        /// Override of the runaway-program guard.
        max_instructions: Option<u64>,
        /// Shard size for the sharded-execution cross-check.
        shard_size: Option<u64>,
        /// Timing backend every cell runs under.
        timing: TimingKind,
        /// Persistent result store to consult/extend (incremental
        /// re-sweeps: only cells whose digest is absent simulate).
        store_dir: Option<String>,
    },
    /// Run the sweep daemon: a persistent content-addressed store and
    /// a worker pool behind an HTTP/1.1 API.
    Serve {
        /// Bind address; port 0 picks an ephemeral port (printed on
        /// stdout for scripting).
        addr: String,
        /// Worker threads; 0 = one per available core.
        threads: usize,
        store_dir: String,
        /// Campaign axes shared with `sweep` — they feed the digest,
        /// so the daemon must know which comparison it serves.
        algorithm: Algorithm,
        baseline: Algorithm,
        lmul: usize,
        sew: Precision,
        max_instructions: Option<u64>,
        timing: TimingKind,
    },
}

/// How `sweep` renders its results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Table,
    Json,
    JsonPretty,
}

fn parse_format(s: &str) -> Result<OutputFormat, String> {
    match s {
        "table" => Ok(OutputFormat::Table),
        "json" => Ok(OutputFormat::Json),
        "json-pretty" => Ok(OutputFormat::JsonPretty),
        other => Err(format!("unknown format `{other}` (table|json|json-pretty)")),
    }
}

fn parse_dims(s: &str) -> Result<GemmDims, String> {
    let parts: Vec<&str> = s.split('x').collect();
    let err = || format!("dims `{s}` are not RxKxN");
    if parts.len() != 3 {
        return Err(err());
    }
    let parse = |p: &str| p.parse::<usize>().ok().filter(|v| *v > 0).ok_or_else(err);
    Ok(GemmDims {
        rows: parse(parts[0])?,
        inner: parse(parts[1])?,
        cols: parse(parts[2])?,
    })
}

fn parse_dataflows(s: &str) -> Result<Vec<Dataflow>, String> {
    if s == "all" {
        return Ok(Dataflow::ALL.to_vec());
    }
    s.split(',')
        .map(|f| match f {
            "a" => Ok(Dataflow::AStationary),
            "b" => Ok(Dataflow::BStationary),
            "c" => Ok(Dataflow::CStationary),
            other => Err(format!("unknown dataflow `{other}` (a|b|c|all)")),
        })
        .collect()
}

fn parse_list<T>(s: &str, item: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    s.split(',').map(item).collect()
}

fn parse_pattern(s: &str) -> Result<NmPattern, String> {
    let (n, m) = s
        .split_once(':')
        .ok_or_else(|| format!("pattern `{s}` is not N:M"))?;
    let n: usize = n.parse().map_err(|_| format!("bad N in `{s}`"))?;
    let m: usize = m.parse().map_err(|_| format!("bad M in `{s}`"))?;
    NmPattern::new(n, m).map_err(|e| e.to_string())
}

fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    match s {
        "dense" => Ok(Algorithm::Dense),
        "rowwise" => Ok(Algorithm::RowWiseSpmm),
        "indexmac" => Ok(Algorithm::IndexMac),
        "indexmac2" => Ok(Algorithm::IndexMac2),
        "scalar" => Ok(Algorithm::ScalarIndexed),
        other => Err(format!(
            "unknown algorithm `{other}` (dense|rowwise|indexmac|indexmac2|scalar)"
        )),
    }
}

fn parse_lmul(s: &str) -> Result<usize, String> {
    match s {
        "1" => Ok(1),
        "2" => Ok(2),
        "4" => Ok(4),
        other => Err(format!("unknown lmul `{other}` (1|2|4)")),
    }
}

fn parse_sew(s: &str) -> Result<Precision, String> {
    s.parse::<usize>()
        .ok()
        .and_then(Precision::from_sew_bits)
        .ok_or_else(|| format!("unknown sew `{s}` (8|16|32)"))
}

/// The algorithms with a quantized (e8/e16) emission path.
fn supports_int(alg: Algorithm) -> bool {
    matches!(alg, Algorithm::IndexMac | Algorithm::IndexMac2)
}

/// The transformer preset behind a (lowercased, suffix-stripped) name.
fn transformer_preset(base: &str) -> Option<TransformerConfig> {
    match base {
        "bert-base" => Some(TransformerConfig::bert_base()),
        "gpt2-small" | "gpt-2-small" => Some(TransformerConfig::gpt2_small()),
        "vit-b16" | "vit-b/16" => Some(TransformerConfig::vit_b16()),
        _ => None,
    }
}

const MODEL_NAMES: &str = "resnet50|densenet121|inceptionv3|bert-base|gpt2-small|vit-b16, \
each also as <model>-int8";

/// Resolves a preset name to its model, optionally overriding the
/// transformer sequence length.
fn preset_by_name(name: &str, seq_len: Option<usize>) -> Result<Model, String> {
    let lower = name.to_ascii_lowercase();
    let (base, int8) = match lower.strip_suffix("-int8") {
        Some(b) => (b, true),
        None => (lower.as_str(), false),
    };
    if let Some(mut tc) = transformer_preset(base) {
        if let Some(s) = seq_len {
            if s == 0 {
                return Err("--seq-len must be positive".to_string());
            }
            tc = tc.with_seq_len(s);
        }
        let m = tc.model();
        return Ok(if int8 {
            let int8_name = format!("{}-int8", m.name);
            m.with_precision(int8_name, Precision::I8)
        } else {
            m
        });
    }
    let cnn = match base {
        "resnet50" => resnet50(),
        "densenet121" => densenet121(),
        "inceptionv3" | "inception_v3" => inception_v3(),
        _ => return Err(format!("unknown model `{lower}` ({MODEL_NAMES})")),
    };
    if seq_len.is_some() {
        return Err("--seq-len applies to transformer presets only".to_string());
    }
    Ok(if int8 {
        let int8_name = format!("{}-int8", cnn.name);
        cnn.with_precision(int8_name, Precision::I8)
    } else {
        cnn
    })
}

fn model_by_name(name: &str) -> Result<Model, String> {
    preset_by_name(name, None)
}

fn parse_caps(s: &str) -> Result<GemmCaps, String> {
    match s {
        "smoke" => Ok(GemmCaps::smoke()),
        "eval" => Ok(GemmCaps::default_eval()),
        "full" => Ok(GemmCaps::unbounded()),
        other => Err(format!("unknown caps `{other}` (smoke|eval|full)")),
    }
}

/// The campaign a model's family defaults to: the paper configuration
/// for CNNs, the follow-up vvi-vs-vx m2 comparison for transformers
/// (quantized presets are reconciled inside `compare_model`).
fn config_for_family(family: ModelFamily) -> ExperimentConfig {
    match family {
        ModelFamily::Cnn => ExperimentConfig::paper(),
        ModelFamily::Transformer => ExperimentConfig::transformer(),
    }
}

/// Parses the optional `--seed` flag shared by every run subcommand.
fn parse_seed(opts: &std::collections::HashMap<String, String>) -> Result<Option<u64>, String> {
    match opts.get("seed") {
        Some(s) => Ok(Some(
            s.parse()
                .map_err(|_| "--seed must be an integer".to_string())?,
        )),
        None => Ok(None),
    }
}

/// Parses the optional `--max-instructions` runaway-guard override
/// shared by `gemm`, `model` and `sweep` (the default guard stays the
/// simulator's 2e9 when absent).
fn parse_max_instructions(
    opts: &std::collections::HashMap<String, String>,
) -> Result<Option<u64>, String> {
    match opts.get("max-instructions") {
        Some(s) => {
            let n: u64 = s
                .parse()
                .map_err(|_| "--max-instructions must be an integer".to_string())?;
            if n == 0 {
                return Err("--max-instructions must be positive".to_string());
            }
            Ok(Some(n))
        }
        None => Ok(None),
    }
}

/// Parses the optional `--shard-size` flag shared by `gemm`, `model`
/// and `sweep`: every timed kernel run is additionally replayed through
/// the sharded counting engine and refereed bit-for-bit against the
/// timed result (absent = no cross-check).
fn parse_shard_size(
    opts: &std::collections::HashMap<String, String>,
) -> Result<Option<u64>, String> {
    match opts.get("shard-size") {
        Some(s) => {
            let n: u64 = s
                .parse()
                .map_err(|_| "--shard-size must be an integer".to_string())?;
            if n == 0 {
                return Err("--shard-size must be positive".to_string());
            }
            Ok(Some(n))
        }
        None => Ok(None),
    }
}

/// Parses the optional `--timing` backend selector shared by `gemm`,
/// `model` and `sweep` (defaults to the paper's in-order scoreboard).
fn parse_timing(opts: &std::collections::HashMap<String, String>) -> Result<TimingKind, String> {
    match opts.get("timing") {
        Some(s) => s.parse(),
        None => Ok(TimingKind::InOrder),
    }
}

/// Applies the optional seed/guard/shard overrides to a campaign config.
fn apply_overrides(
    cfg: &mut ExperimentConfig,
    seed: Option<u64>,
    max_instructions: Option<u64>,
    shard_size: Option<u64>,
) {
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(limit) = max_instructions {
        cfg.max_instructions = limit;
    }
    if shard_size.is_some() {
        cfg.shard_size = shard_size;
    }
}

/// Parses the argument vector (without the program name).
fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or(USAGE.to_string())?;
    let mut opts = std::collections::HashMap::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or(format!("expected --option, got `{}`", rest[i]))?;
        let value = rest.get(i + 1).ok_or(format!("--{key} needs a value"))?;
        opts.insert(key.to_string(), (*value).clone());
        i += 2;
    }
    let get = |k: &str| opts.get(k).cloned();
    let get_usize = |k: &str, default: usize| -> Result<usize, String> {
        match opts.get(k) {
            Some(v) => v.parse().map_err(|_| format!("--{k} must be an integer")),
            None => Ok(default),
        }
    };
    match cmd.as_str() {
        "config" => Ok(Command::Config),
        "gemm" => {
            let rows = get_usize("rows", 0)?;
            let inner = get_usize("inner", 0)?;
            let cols = get_usize("cols", 0)?;
            if rows == 0 || inner == 0 || cols == 0 {
                return Err("gemm requires --rows, --inner and --cols".to_string());
            }
            let algorithm = match get("algorithm") {
                Some(a) => Some(parse_algorithm(&a)?),
                None => None,
            };
            let sew = match get("sew") {
                Some(s) => parse_sew(&s)?,
                None => Precision::F32,
            };
            // The walk-based baselines move values through the FP file
            // and have no quantized path.
            if sew.is_int() {
                if let Some(alg) = algorithm {
                    if !supports_int(alg) {
                        return Err(
                            "--sew 8|16 requires --algorithm indexmac or indexmac2".to_string()
                        );
                    }
                }
            }
            Ok(Command::Gemm {
                dims: GemmDims { rows, inner, cols },
                pattern: match get("pattern") {
                    Some(p) => parse_pattern(&p)?,
                    None => NmPattern::P2_4,
                },
                algorithm,
                unroll: get_usize("unroll", 4)?,
                tile_rows: get_usize("tile-rows", 16)?,
                lmul: {
                    let lmul = match get("lmul") {
                        Some(l) => parse_lmul(&l)?,
                        None => 1,
                    };
                    // Only the second-generation kernel understands
                    // grouping; accepting the flag elsewhere would
                    // silently benchmark nothing.
                    if lmul > 1 && get("algorithm").as_deref() != Some("indexmac2") {
                        return Err("--lmul requires --algorithm indexmac2".to_string());
                    }
                    lmul
                },
                sew,
                seed: parse_seed(&opts)?,
                max_instructions: parse_max_instructions(&opts)?,
                shard_size: parse_shard_size(&opts)?,
                timing: parse_timing(&opts)?,
            })
        }
        "layer" => Ok(Command::Layer {
            model: get("model").ok_or("layer requires --model")?,
            name: get("name").ok_or("layer requires --name")?,
            pattern: match get("pattern") {
                Some(p) => parse_pattern(&p)?,
                None => NmPattern::P2_4,
            },
            seed: parse_seed(&opts)?,
        }),
        "model" => Ok(Command::Model {
            preset: get("preset").ok_or("model requires --preset")?,
            pattern: match get("pattern") {
                Some(p) => parse_pattern(&p)?,
                None => NmPattern::P2_4,
            },
            seq_len: match get("seq-len") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| "--seq-len must be an integer".to_string())?,
                ),
                None => None,
            },
            sew: match get("sew") {
                Some(v) => Some(parse_sew(&v)?),
                None => None,
            },
            caps: match get("caps") {
                Some(v) => parse_caps(&v)?,
                None => GemmCaps::default_eval(),
            },
            seed: parse_seed(&opts)?,
            max_instructions: parse_max_instructions(&opts)?,
            shard_size: parse_shard_size(&opts)?,
            timing: parse_timing(&opts)?,
        }),
        "list" => Ok(Command::List {
            model: get("model").ok_or("list requires --model")?,
        }),
        "lint" => {
            let algorithm = match get("algorithm") {
                None => None,
                Some(a) if a == "all" => None,
                Some(a) => Some(parse_algorithm(&a)?),
            };
            let sew = match get("sew") {
                Some(s) => Some(parse_sew(&s)?),
                None => None,
            };
            if let (Some(p), Some(alg)) = (sew, algorithm) {
                if p.is_int() && !supports_int(alg) {
                    return Err("--sew 8|16 requires --algorithm indexmac or indexmac2".to_string());
                }
            }
            let lmul = match get("lmul") {
                Some(l) => Some(parse_lmul(&l)?),
                None => None,
            };
            if let (Some(l), Some(alg)) = (lmul, algorithm) {
                if l > 1 && alg != Algorithm::IndexMac2 {
                    return Err("--lmul requires --algorithm indexmac2".to_string());
                }
            }
            Ok(Command::Lint {
                algorithm,
                dims: match get("dims") {
                    Some(d) => parse_dims(&d)?,
                    None => GemmDims {
                        rows: 16,
                        inner: 64,
                        cols: 64,
                    },
                },
                patterns: match get("patterns") {
                    Some(p) => parse_list(&p, parse_pattern)?,
                    None => NmPattern::EVALUATED.to_vec(),
                },
                sew,
                lmul,
                unroll: get_usize("unroll", 4)?,
                tile_rows: get_usize("tile-rows", 16)?,
                format: match get("format") {
                    Some(f) => parse_format(&f)?,
                    None => OutputFormat::Table,
                },
            })
        }
        "sweep" => {
            let dims_spec = get("dims").ok_or("sweep requires --dims RxKxN[,RxKxN...]")?;
            let dims = parse_list(&dims_spec, parse_dims)?;
            let patterns = match get("patterns") {
                Some(p) => parse_list(&p, parse_pattern)?,
                None => NmPattern::EVALUATED.to_vec(),
            };
            let dataflows = match get("dataflows") {
                Some(f) => parse_dataflows(&f)?,
                None => vec![Dataflow::BStationary],
            };
            let seed = parse_seed(&opts)?;
            let threads = match get("threads") {
                Some(t) => {
                    let t: usize = t
                        .parse()
                        .map_err(|_| "--threads must be an integer".to_string())?;
                    if t == 0 {
                        return Err("--threads must be positive".to_string());
                    }
                    Some(t)
                }
                None => None,
            };
            let format = match get("format") {
                Some(f) => parse_format(&f)?,
                None => OutputFormat::Table,
            };
            let (sew, algorithm, baseline, lmul) = parse_campaign(&opts)?;
            Ok(Command::Sweep {
                dims,
                patterns,
                dataflows,
                seed,
                threads,
                format,
                algorithm,
                baseline,
                lmul,
                sew,
                max_instructions: parse_max_instructions(&opts)?,
                shard_size: parse_shard_size(&opts)?,
                timing: parse_timing(&opts)?,
                store_dir: get("store-dir"),
            })
        }
        "serve" => {
            let store_dir = get("store-dir").ok_or("serve requires --store-dir DIR")?;
            let (sew, algorithm, baseline, lmul) = parse_campaign(&opts)?;
            Ok(Command::Serve {
                addr: get("addr").unwrap_or_else(|| "127.0.0.1:0".to_string()),
                threads: get_usize("threads", 0)?,
                store_dir,
                algorithm,
                baseline,
                lmul,
                sew,
                max_instructions: parse_max_instructions(&opts)?,
                timing: parse_timing(&opts)?,
            })
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

/// Parses the campaign axes `sweep` and `serve` share (`--sew`,
/// `--algorithm`, `--baseline`, `--lmul`), with the same defaulting
/// and validation rules — these feed [`indexmac::config_digest`], so
/// both commands must agree on them exactly.
fn parse_campaign(
    opts: &std::collections::HashMap<String, String>,
) -> Result<(Precision, Algorithm, Algorithm, usize), String> {
    let sew = match opts.get("sew") {
        Some(s) => parse_sew(s)?,
        None => Precision::F32,
    };
    let algorithm = match opts.get("algorithm") {
        Some(a) => parse_algorithm(a)?,
        // Quantized sweeps default to the kernel pair that owns
        // a widening path: vvi proposed, vx baseline.
        None if sew.is_int() => Algorithm::IndexMac2,
        None => Algorithm::IndexMac,
    };
    let baseline = match opts.get("baseline") {
        Some(a) => parse_algorithm(a)?,
        // Comparing the two vindexmac generations is the whole
        // point of `--algorithm indexmac2`; default the baseline
        // to the first generation there, Row-Wise-SpMM otherwise.
        None if algorithm == Algorithm::IndexMac2 => Algorithm::IndexMac,
        None if sew.is_int() => Algorithm::IndexMac,
        None => Algorithm::RowWiseSpmm,
    };
    if sew.is_int() && (!supports_int(algorithm) || !supports_int(baseline)) {
        return Err("--sew 8|16 requires indexmac/indexmac2 on both comparison sides".to_string());
    }
    let lmul = match opts.get("lmul") {
        Some(l) => parse_lmul(l)?,
        None => 1,
    };
    if lmul > 1 && algorithm != Algorithm::IndexMac2 && baseline != Algorithm::IndexMac2 {
        return Err("--lmul requires indexmac2 as --algorithm or --baseline".to_string());
    }
    Ok((sew, algorithm, baseline, lmul))
}

const USAGE: &str = "usage:
  indexmac-cli config
  indexmac-cli gemm --rows R --inner K --cols N [--pattern N:M] [--algorithm dense|rowwise|indexmac|indexmac2|scalar] [--unroll U] [--tile-rows L] [--lmul 1|2|4] [--sew 8|16|32] [--timing inorder|pipelined|ooo] [--seed S] [--max-instructions I] [--shard-size N]
  indexmac-cli layer --model M --name NAME [--pattern N:M] [--seed S]
  indexmac-cli model --preset M [--pattern N:M] [--seq-len T] [--sew 8|16|32] [--caps smoke|eval|full] [--timing inorder|pipelined|ooo] [--seed S] [--max-instructions I] [--shard-size N]
  indexmac-cli list --model M
  indexmac-cli lint [--algorithm A|all] [--dims RxKxN] [--patterns N:M[,N:M...]] [--sew 8|16|32] [--lmul 1|2|4] [--unroll U] [--tile-rows L] [--format table|json|json-pretty]
  indexmac-cli sweep --dims RxKxN[,RxKxN...] [--patterns N:M[,N:M...]] [--dataflows a|b|c|all] [--algorithm A] [--baseline A] [--lmul 1|2|4] [--sew 8|16|32] [--timing inorder|pipelined|ooo] [--seed S] [--threads T] [--format table|json|json-pretty] [--max-instructions I] [--shard-size N] [--store-dir DIR]
  indexmac-cli serve --store-dir DIR [--addr HOST:PORT] [--threads T] [--algorithm A] [--baseline A] [--lmul 1|2|4] [--sew 8|16|32] [--timing inorder|pipelined|ooo] [--max-instructions I]

models: resnet50 | densenet121 | inceptionv3 | bert-base | gpt2-small | vit-b16, each also as <model>-int8 (e8 datapath)
transformer presets decompose into attention/FFN weight GEMMs; --seq-len rescales their batched columns
--sew 8|16 runs the quantized widening datapath (indexmac/indexmac2 only, bit-exact verification)
--timing selects the scalar-core timing backend: the paper's in-order scoreboard (default), an explicit 5-stage pipeline, or an out-of-order core (ROB/RS/RAT/LSQ); instret is backend-invariant
--max-instructions tunes the per-simulation runaway guard (default 2e9)
--shard-size N replays every timed run through the sharded counting engine in N-instruction shards and referees the results bit-for-bit (off by default)
lint statically analyzes kernel builds without simulating (exit 1 on any diagnostic); unspecified lint axes sweep every shipped configuration
--store-dir DIR keeps a persistent content-addressed result store: sweep serves known cells from it and simulates only the rest; serve exposes it over HTTP (GET /healthz | GET /stats | GET /cell/<digest> | POST /sweep | POST /shutdown), binds --addr (port 0 = ephemeral, printed on stdout) and drains gracefully on POST /shutdown";

fn print_comparison(
    dims: GemmDims,
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<(), String> {
    let cmp = compare_gemm(dims, pattern, cfg).map_err(|e| e.to_string())?;
    println!("{:<13} : {}", cfg.baseline.to_string(), cmp.baseline.report);
    println!("{:<13} : {}", cfg.proposed.to_string(), cmp.proposed.report);
    println!();
    println!("speedup                 : {:.2}x", cmp.speedup());
    println!("normalized mem accesses : {:.1}%", cmp.mem_ratio() * 100.0);
    println!(
        "baseline bottleneck     : {}",
        analyze(&cmp.baseline.report, &cfg.sim)
    );
    println!(
        "proposed bottleneck     : {}",
        analyze(&cmp.proposed.report, &cfg.sim)
    );
    Ok(())
}

/// Short CLI token of an algorithm (the `--algorithm` vocabulary).
fn algorithm_slug(alg: Algorithm) -> &'static str {
    match alg {
        Algorithm::Dense => "dense",
        Algorithm::RowWiseSpmm => "rowwise",
        Algorithm::IndexMac => "indexmac",
        Algorithm::IndexMac2 => "indexmac2",
        Algorithm::ScalarIndexed => "scalar",
    }
}

/// Short element-type token for lint output.
fn precision_slug(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::I16 => "i16",
        Precision::I8 => "i8",
    }
}

/// Lints the requested kernel/precision/grouping/pattern matrix:
/// unspecified axes sweep every combination the kernels ship with,
/// which is exactly what the CI lint job runs.
fn run_lint(
    algorithm: Option<Algorithm>,
    dims: GemmDims,
    patterns: &[NmPattern],
    sew: Option<Precision>,
    lmul: Option<usize>,
    unroll: usize,
    tile_rows: usize,
) -> Result<Vec<LintResult>, String> {
    let algorithms: Vec<Algorithm> = match algorithm {
        Some(a) => vec![a],
        None => Algorithm::ALL.to_vec(),
    };
    let mut results = Vec::new();
    for &alg in &algorithms {
        let precisions: Vec<Precision> = match sew {
            Some(p) => {
                if p.is_int() && !supports_int(alg) {
                    continue; // walk-based kernels have no quantized path
                }
                vec![p]
            }
            None if supports_int(alg) => vec![Precision::F32, Precision::I16, Precision::I8],
            None => vec![Precision::F32],
        };
        for &precision in &precisions {
            let lmuls: Vec<usize> = match lmul {
                Some(l) => {
                    if l > 1 && alg != Algorithm::IndexMac2 {
                        continue; // only indexmac2 understands grouping
                    }
                    vec![l]
                }
                // The widening accumulator bounds the grouped register
                // budget: lmul * 32/SEW <= 4.
                None if alg == Algorithm::IndexMac2 => match precision {
                    Precision::F32 => vec![1, 2, 4],
                    Precision::I16 => vec![1, 2],
                    Precision::I8 => vec![1],
                },
                None => vec![1],
            };
            for &lm in &lmuls {
                for &pattern in patterns {
                    let cfg = ExperimentConfig {
                        precision,
                        lmul: lm,
                        tile_rows,
                        params: KernelParams {
                            unroll,
                            ..Default::default()
                        },
                        ..ExperimentConfig::paper()
                    };
                    results.push(lint_gemm(dims, pattern, alg, &cfg).map_err(|e| e.to_string())?);
                }
            }
        }
    }
    Ok(results)
}

/// Lint results as a serializable value tree (one object per config).
fn lint_value(results: &[LintResult]) -> serde_json::Value {
    use serde_json::Value;
    let json: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::object([
                ("kernel", Value::Str(algorithm_slug(r.algorithm).into())),
                ("sew", Value::Str(precision_slug(r.precision).into())),
                ("lmul", Value::UInt(r.lmul as u64)),
                ("pattern", Value::Str(r.pattern.to_string())),
                (
                    "gemm",
                    Value::Str(format!("{}x{}x{}", r.gemm.rows, r.gemm.inner, r.gemm.cols)),
                ),
                (
                    "static_instructions",
                    Value::UInt(r.static_instructions as u64),
                ),
                ("verified", Value::Bool(r.verified)),
                (
                    "diagnostics",
                    Value::Array(
                        r.diagnostics
                            .iter()
                            .map(|d| {
                                Value::object([
                                    ("rule", Value::Str(d.rule.id().into())),
                                    ("severity", Value::Str(d.severity.to_string())),
                                    ("confidence", Value::Str(d.confidence.to_string())),
                                    ("pc", Value::UInt(d.pc as u64)),
                                    ("message", Value::Str(d.message.clone())),
                                    ("hint", Value::Str(d.hint.into())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::object([
        ("results", Value::Array(json)),
        (
            "clean",
            Value::Bool(results.iter().all(|r| r.diagnostics.is_empty())),
        ),
    ])
}

/// Compact JSON rendering of lint results.
fn lint_json(results: &[LintResult]) -> String {
    serde_json::to_string(&lint_value(results)).expect("lint JSON serializes")
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Config => {
            println!("{}", SimConfig::table_i());
            Ok(())
        }
        Command::Gemm {
            dims,
            pattern,
            algorithm,
            unroll,
            tile_rows,
            lmul,
            sew,
            seed,
            max_instructions,
            shard_size,
            timing,
        } => {
            // Quantized comparisons default to the two vindexmac
            // generations (the walk-based baselines are f32-only).
            let base = if sew.is_int() {
                ExperimentConfig::quantized(sew)
            } else {
                ExperimentConfig::paper()
            };
            let mut cfg = ExperimentConfig {
                params: KernelParams {
                    unroll,
                    ..Default::default()
                },
                tile_rows,
                lmul,
                ..base
            }
            .with_timing(timing);
            apply_overrides(&mut cfg, seed, max_instructions, shard_size);
            println!(
                "GEMM {}x{}x{}, A pruned to {pattern}, {} elements, {timing} timing (simulated {:?})\n",
                dims.rows,
                dims.inner,
                dims.cols,
                cfg.precision,
                cfg.caps.apply(dims)
            );
            match algorithm {
                Some(alg) => {
                    let r = run_gemm(dims, pattern, alg, &cfg).map_err(|e| e.to_string())?;
                    println!("{alg}:\n{}", r.report);
                    println!("bottleneck: {}", analyze(&r.report, &cfg.sim));
                    if cfg.precision.is_int() {
                        println!("verification: bit-exact against the i32 reference");
                    }
                    Ok(())
                }
                None => print_comparison(dims, pattern, &cfg),
            }
        }
        Command::Layer {
            model,
            name,
            pattern,
            seed,
        } => {
            let m = model_by_name(&model)?;
            let layer = m.layer(&name).ok_or(format!(
                "no layer `{name}` in {} (try `list --model {model}`)",
                m.name
            ))?;
            // Quantized presets run their layers on the e8 datapath;
            // transformer presets default to the vvi-vs-vx campaign.
            let mut cfg = if m.precision.is_int() {
                ExperimentConfig::quantized(m.precision)
            } else {
                config_for_family(m.family)
            };
            if let Some(seed) = seed {
                cfg.seed = seed;
            }
            println!("{layer}  ({pattern}, {} elements)\n", m.precision);
            print_comparison(layer.gemm, pattern, &cfg)
        }
        Command::Model {
            preset,
            pattern,
            seq_len,
            sew,
            caps,
            seed,
            max_instructions,
            shard_size,
            timing,
        } => {
            let mut m = preset_by_name(&preset, seq_len)?;
            if let Some(p) = sew {
                if p != m.precision {
                    // Drop a now-contradictory precision suffix before
                    // tagging the override (e.g. `-int8` + `--sew 32`).
                    let base = m.name.trim_end_matches("-int8").to_string();
                    let renamed = if p.is_int() {
                        format!("{base}-e{}", p.bits())
                    } else {
                        base
                    };
                    m = m.with_precision(renamed, p);
                }
            }
            let mut cfg = ExperimentConfig {
                caps,
                ..config_for_family(m.family)
            }
            .with_timing(timing);
            apply_overrides(&mut cfg, seed, max_instructions, shard_size);
            indexmac::experiment::reset_decode_cache();
            println!(
                "{}: {} {} layers ({} distinct GEMM shapes), {:.2} GMACs, {} elements, A pruned to {pattern}",
                m.name,
                m.layers.len(),
                m.family,
                m.unique_shapes().len(),
                m.total_macs() as f64 / 1e9,
                m.precision,
            );
            println!(
                "caps: {} | seed {:#x} | {timing} timing\n",
                cfg.caps, cfg.seed
            );
            let c = compare_model(&m, pattern, &cfg).map_err(|e| e.to_string())?;
            let mut table = Table::new(vec![
                "layer",
                "GEMM (RxKxN)",
                "simulated",
                "cycles (base -> prop)",
                "instret (base -> prop)",
                "speedup",
                "normalized mem accesses",
            ]);
            for (layer, result) in m.layers.iter().zip(&c.layers) {
                let base = &result.comparison.baseline.report;
                let prop = &result.comparison.proposed.report;
                let g = layer.gemm;
                let sim = result.comparison.proposed.gemm;
                table.row(vec![
                    layer.name.clone(),
                    format!("{}x{}x{}", g.rows, g.inner, g.cols),
                    format!("{}x{}x{}", sim.rows, sim.inner, sim.cols),
                    fmt_pair(base.cycles, prop.cycles),
                    fmt_pair(base.instructions, prop.instructions),
                    fmt_speedup(result.comparison.speedup()),
                    fmt_pct(result.comparison.mem_ratio()),
                ]);
            }
            print!("{}", table.render());
            let (lo, hi) = c.speedup_range();
            // Report the kernels that actually ran: compare_model may
            // have reconciled the pair for a quantized preset.
            let ran = &c.layers[0].comparison;
            println!(
                "baseline: {} | proposed: {} | {} elements",
                ran.baseline.algorithm, ran.proposed.algorithm, c.precision,
            );
            println!(
                "total speedup {} | normalized mem accesses {} | per-layer range {}-{}",
                fmt_speedup(c.total_speedup()),
                fmt_pct(c.total_mem_ratio()),
                fmt_speedup(lo),
                fmt_speedup(hi),
            );
            println!(
                "decode cache: {}",
                indexmac::experiment::decode_cache_stats()
            );
            Ok(())
        }
        Command::List { model } => {
            let m = model_by_name(&model)?;
            println!("{m}");
            Ok(())
        }
        Command::Lint {
            algorithm,
            dims,
            patterns,
            sew,
            lmul,
            unroll,
            tile_rows,
            format,
        } => {
            let results = run_lint(algorithm, dims, &patterns, sew, lmul, unroll, tile_rows)?;
            let total_diags: usize = results.iter().map(|r| r.diagnostics.len()).sum();
            match format {
                OutputFormat::Json => println!("{}", lint_json(&results)),
                OutputFormat::JsonPretty => println!(
                    "{}",
                    serde_json::to_string_pretty(&lint_value(&results)).expect("serializes")
                ),
                OutputFormat::Table => {
                    let mut table = Table::new(vec![
                        "kernel",
                        "sew",
                        "lmul",
                        "pattern",
                        "GEMM (RxKxN)",
                        "instrs",
                        "diagnostics",
                        "verified",
                    ]);
                    for r in &results {
                        table.row(vec![
                            algorithm_slug(r.algorithm).to_string(),
                            precision_slug(r.precision).to_string(),
                            r.lmul.to_string(),
                            r.pattern.to_string(),
                            format!("{}x{}x{}", r.gemm.rows, r.gemm.inner, r.gemm.cols),
                            r.static_instructions.to_string(),
                            r.diagnostics.len().to_string(),
                            if r.verified { "yes" } else { "NO" }.to_string(),
                        ]);
                    }
                    print!("{}", table.render());
                    for r in &results {
                        for d in &r.diagnostics {
                            println!(
                                "{} {} lmul{} {}: {d}",
                                algorithm_slug(r.algorithm),
                                precision_slug(r.precision),
                                r.lmul,
                                r.pattern
                            );
                        }
                    }
                    println!(
                        "{} kernel configurations linted, {} diagnostics",
                        results.len(),
                        total_diags
                    );
                }
            }
            if total_diags > 0 {
                return Err(format!(
                    "lint found {total_diags} diagnostics across {} configurations",
                    results.len()
                ));
            }
            Ok(())
        }
        Command::Sweep {
            dims,
            patterns,
            dataflows,
            seed,
            threads,
            format,
            algorithm,
            baseline,
            lmul,
            sew,
            max_instructions,
            shard_size,
            timing,
            store_dir,
        } => {
            let mut cfg = ExperimentConfig {
                baseline,
                proposed: algorithm,
                lmul,
                precision: sew,
                ..ExperimentConfig::paper()
            }
            .with_timing(timing);
            apply_overrides(&mut cfg, None, max_instructions, shard_size);
            let mut grid = SweepGrid::new(patterns, dims).with_dataflows(dataflows);
            if let Some(seed) = seed {
                grid = grid.with_base_seed(seed);
            }
            // With a store, only cells whose digest is absent simulate;
            // the merged result is bit-identical to a fresh run either
            // way, so stdout stays stable and the store note goes to
            // stderr.
            let run_store = |store: &mut ResultStore| run_grid_with_store(&grid, &cfg, store);
            let result = match (&store_dir, threads) {
                (Some(dir), n) => {
                    let mut store = ResultStore::open(dir).map_err(|e| e.to_string())?;
                    let (result, hits, misses) = match n {
                        Some(n) => rayon::ThreadPoolBuilder::new()
                            .num_threads(n)
                            .build()
                            .map_err(|e| e.to_string())?
                            .install(|| run_store(&mut store)),
                        None => run_store(&mut store),
                    }
                    .map_err(|e| e.to_string())?;
                    store.flush().map_err(|e| e.to_string())?;
                    eprintln!("store {dir}: {hits} hits, {misses} computed");
                    result
                }
                (None, Some(n)) => rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .map_err(|e| e.to_string())?
                    .install(|| run_grid(&grid, &cfg))
                    .map_err(|e| e.to_string())?,
                (None, None) => run_grid(&grid, &cfg).map_err(|e| e.to_string())?,
            };
            match format {
                OutputFormat::Json => println!("{}", result.to_json()),
                OutputFormat::JsonPretty => println!("{}", result.to_json_pretty()),
                OutputFormat::Table => {
                    println!(
                        "baseline: {} | proposed: {}{} | {} elements | {} timing",
                        cfg.baseline,
                        cfg.proposed,
                        if cfg.proposed == Algorithm::IndexMac2 {
                            format!(" (lmul {})", cfg.lmul)
                        } else {
                            String::new()
                        },
                        cfg.precision,
                        result.timing,
                    );
                    let mut table = Table::new(vec![
                        "GEMM (RxKxN)",
                        "pattern",
                        "dataflow",
                        "seed",
                        "cycles (base -> prop)",
                        "instret (base -> prop)",
                        "speedup",
                        "normalized mem accesses",
                    ]);
                    for cell in &result.cells {
                        let d = cell.cell.dims;
                        let base = &cell.comparison.baseline.report;
                        let prop = &cell.comparison.proposed.report;
                        table.row(vec![
                            format!("{}x{}x{}", d.rows, d.inner, d.cols),
                            cell.cell.pattern.to_string(),
                            cell.cell.dataflow.to_string(),
                            format!("{:#x}", cell.cell.seed),
                            fmt_pair(base.cycles, prop.cycles),
                            fmt_pair(base.instructions, prop.instructions),
                            fmt_speedup(cell.speedup()),
                            fmt_pct(cell.mem_ratio()),
                        ]);
                    }
                    print!("{}", table.render());
                    if let (Some((lo, hi)), Some(geo)) =
                        (result.speedup_range(), result.geomean_speedup())
                    {
                        println!(
                            "{} cells on {} threads | speedup range {}-{} | geomean {}",
                            result.cells.len(),
                            result.threads,
                            fmt_speedup(lo),
                            fmt_speedup(hi),
                            fmt_speedup(geo),
                        );
                    }
                }
            }
            Ok(())
        }
        Command::Serve {
            addr,
            threads,
            store_dir,
            algorithm,
            baseline,
            lmul,
            sew,
            max_instructions,
            timing,
        } => {
            let mut cfg = ExperimentConfig {
                baseline,
                proposed: algorithm,
                lmul,
                precision: sew,
                ..ExperimentConfig::paper()
            }
            .with_timing(timing);
            apply_overrides(&mut cfg, None, max_instructions, None);
            let store = ResultStore::open(&store_dir).map_err(|e| e.to_string())?;
            let threads = if threads == 0 {
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
            } else {
                threads
            };
            let service = SweepService::start(cfg, store, threads);
            let listener = std::net::TcpListener::bind(&addr).map_err(|e| e.to_string())?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            // Scripts (the CI smoke) scrape this line for the bound
            // ephemeral port — keep the `http://host:port` shape.
            println!("listening on http://{local} | {threads} workers | store {store_dir}");
            indexmac_service::http::serve(&service, listener).map_err(|e| e.to_string())?;
            println!("drained and stopped");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_config_and_list() {
        assert_eq!(parse(&argv("config")).unwrap(), Command::Config);
        assert_eq!(
            parse(&argv("list --model resnet50")).unwrap(),
            Command::List {
                model: "resnet50".into()
            }
        );
    }

    #[test]
    fn parse_lint_defaults_and_overrides() {
        assert_eq!(
            parse(&argv("lint")).unwrap(),
            Command::Lint {
                algorithm: None,
                dims: GemmDims {
                    rows: 16,
                    inner: 64,
                    cols: 64
                },
                patterns: NmPattern::EVALUATED.to_vec(),
                sew: None,
                lmul: None,
                unroll: 4,
                tile_rows: 16,
                format: OutputFormat::Table,
            }
        );
        let c = parse(&argv(
            "lint --algorithm indexmac2 --sew 8 --patterns 1:4 --dims 8x32x32 --format json",
        ))
        .unwrap();
        match c {
            Command::Lint {
                algorithm,
                sew,
                patterns,
                dims,
                format,
                ..
            } => {
                assert_eq!(algorithm, Some(Algorithm::IndexMac2));
                assert_eq!(sew, Some(Precision::I8));
                assert_eq!(patterns, vec![NmPattern::P1_4]);
                assert_eq!(dims.inner, 32);
                assert_eq!(format, OutputFormat::Json);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // `all` is the explicit spelling of the default.
        assert!(matches!(
            parse(&argv("lint --algorithm all")).unwrap(),
            Command::Lint {
                algorithm: None,
                ..
            }
        ));
        // Constraint checks mirror the run subcommands.
        assert!(parse(&argv("lint --algorithm rowwise --sew 8")).is_err());
        assert!(parse(&argv("lint --algorithm indexmac --lmul 2")).is_err());
    }

    #[test]
    fn lint_matrix_is_clean_and_full() {
        // The full shipped-configuration sweep (what CI runs) must lint
        // with zero diagnostics, and every config must mint a token.
        let dims = GemmDims {
            rows: 8,
            inner: 32,
            cols: 32,
        };
        let results = run_lint(None, dims, &NmPattern::EVALUATED, None, None, 4, 16).unwrap();
        // 3 walk kernels (f32 only) + indexmac (3 precisions) +
        // indexmac2 (f32 x {1,2,4} + i16 x {1,2} + i8), per pattern.
        assert_eq!(results.len(), (3 + 3 + 6) * NmPattern::EVALUATED.len());
        for r in &results {
            assert!(
                r.diagnostics.is_empty(),
                "{} {} lmul{} {}: {:?}",
                algorithm_slug(r.algorithm),
                precision_slug(r.precision),
                r.lmul,
                r.pattern,
                r.diagnostics
            );
            assert!(r.verified);
        }
        // JSON shape sanity.
        let serde_json::Value::Object(fields) = lint_value(&results) else {
            panic!("lint JSON root must be an object");
        };
        assert_eq!(fields[1], ("clean".into(), serde_json::Value::Bool(true)));
        let serde_json::Value::Array(rows) = &fields[0].1 else {
            panic!("results must be an array");
        };
        assert_eq!(rows.len(), results.len());
        assert!(lint_json(&results).contains("\"clean\""));
    }

    #[test]
    fn parse_gemm_defaults_and_overrides() {
        let c = parse(&argv("gemm --rows 8 --inner 32 --cols 16")).unwrap();
        assert_eq!(
            c,
            Command::Gemm {
                dims: GemmDims {
                    rows: 8,
                    inner: 32,
                    cols: 16
                },
                pattern: NmPattern::P2_4,
                algorithm: None,
                unroll: 4,
                tile_rows: 16,
                lmul: 1,
                sew: Precision::F32,
                seed: None,
                max_instructions: None,
                shard_size: None,
                timing: TimingKind::InOrder,
            }
        );
        let c = parse(&argv(
            "gemm --rows 8 --inner 32 --cols 16 --pattern 1:4 --algorithm indexmac2 --unroll 2 --tile-rows 8 --lmul 2 --seed 99",
        ))
        .unwrap();
        match c {
            Command::Gemm {
                pattern,
                algorithm,
                unroll,
                tile_rows,
                lmul,
                seed,
                ..
            } => {
                assert_eq!(pattern, NmPattern::P1_4);
                assert_eq!(algorithm, Some(Algorithm::IndexMac2));
                assert_eq!(unroll, 2);
                assert_eq!(tile_rows, 8);
                assert_eq!(lmul, 2);
                assert_eq!(seed, Some(99));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_sew_flags() {
        let c = parse(&argv(
            "gemm --rows 8 --inner 32 --cols 16 --algorithm indexmac2 --sew 8",
        ))
        .unwrap();
        match c {
            Command::Gemm { sew, .. } => assert_eq!(sew, Precision::I8),
            other => panic!("wrong parse: {other:?}"),
        }
        // Comparison mode accepts --sew (it pairs the vindexmac kernels).
        let c = parse(&argv("gemm --rows 8 --inner 32 --cols 16 --sew 16")).unwrap();
        match c {
            Command::Gemm { sew, algorithm, .. } => {
                assert_eq!(sew, Precision::I16);
                assert_eq!(algorithm, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // f32-only kernels reject quantized SEWs at parse time.
        assert!(parse(&argv(
            "gemm --rows 8 --inner 32 --cols 16 --algorithm rowwise --sew 8"
        ))
        .unwrap_err()
        .contains("indexmac"));
        assert!(parse(&argv("gemm --rows 8 --inner 32 --cols 16 --sew 64"))
            .unwrap_err()
            .contains("sew"));
        // Sweep: --sew 8 defaults to the vvi-vs-vx pair.
        let c = parse(&argv("sweep --dims 8x32x16 --sew 8")).unwrap();
        match c {
            Command::Sweep {
                sew,
                algorithm,
                baseline,
                ..
            } => {
                assert_eq!(sew, Precision::I8);
                assert_eq!(algorithm, Algorithm::IndexMac2);
                assert_eq!(baseline, Algorithm::IndexMac);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(
            parse(&argv("sweep --dims 8x32x16 --sew 8 --baseline rowwise"))
                .unwrap_err()
                .contains("both comparison sides")
        );
    }

    #[test]
    fn parse_max_instructions_flag() {
        // Accepted on gemm/model/sweep; 0 and non-integers rejected.
        let c = parse(&argv(
            "gemm --rows 8 --inner 32 --cols 16 --max-instructions 500",
        ))
        .unwrap();
        match c {
            Command::Gemm {
                max_instructions, ..
            } => assert_eq!(max_instructions, Some(500)),
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("model --preset bert-base --max-instructions 1000")).unwrap();
        match c {
            Command::Model {
                max_instructions, ..
            } => assert_eq!(max_instructions, Some(1000)),
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("sweep --dims 8x32x16 --max-instructions 2000")).unwrap();
        match c {
            Command::Sweep {
                max_instructions, ..
            } => assert_eq!(max_instructions, Some(2000)),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv(
            "gemm --rows 8 --inner 32 --cols 16 --max-instructions 0"
        ))
        .unwrap_err()
        .contains("positive"));
        assert!(parse(&argv("sweep --dims 8x32x16 --max-instructions lots"))
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn parse_shard_size_flag() {
        // Accepted on gemm/model/sweep; 0 and non-integers rejected;
        // absent means no cross-check.
        let c = parse(&argv(
            "gemm --rows 8 --inner 32 --cols 16 --shard-size 4096",
        ))
        .unwrap();
        match c {
            Command::Gemm { shard_size, .. } => assert_eq!(shard_size, Some(4096)),
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("model --preset bert-base --shard-size 100000")).unwrap();
        match c {
            Command::Model { shard_size, .. } => assert_eq!(shard_size, Some(100_000)),
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("sweep --dims 8x32x16 --shard-size 512")).unwrap();
        match c {
            Command::Sweep { shard_size, .. } => assert_eq!(shard_size, Some(512)),
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("gemm --rows 8 --inner 32 --cols 16")).unwrap();
        match c {
            Command::Gemm { shard_size, .. } => assert_eq!(shard_size, None),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(
            parse(&argv("gemm --rows 8 --inner 32 --cols 16 --shard-size 0"))
                .unwrap_err()
                .contains("positive")
        );
        assert!(parse(&argv("sweep --dims 8x32x16 --shard-size many"))
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn sharded_cross_check_runs_through_the_cli() {
        // A gemm run with --shard-size exercises the referee end to
        // end; success means sharded and timed execution agreed.
        run(Command::Gemm {
            dims: GemmDims {
                rows: 4,
                inner: 16,
                cols: 8,
            },
            pattern: NmPattern::P1_4,
            algorithm: Some(Algorithm::IndexMac2),
            unroll: 2,
            tile_rows: 16,
            lmul: 1,
            sew: Precision::F32,
            seed: None,
            max_instructions: None,
            shard_size: Some(257),
            timing: TimingKind::InOrder,
        })
        .unwrap();
    }

    #[test]
    fn tight_max_instructions_fails_the_run() {
        let err = run(Command::Gemm {
            dims: GemmDims {
                rows: 4,
                inner: 16,
                cols: 8,
            },
            pattern: NmPattern::P1_4,
            algorithm: Some(Algorithm::IndexMac),
            unroll: 2,
            tile_rows: 16,
            lmul: 1,
            sew: Precision::F32,
            seed: None,
            max_instructions: Some(5),
            shard_size: None,
            timing: TimingKind::InOrder,
        })
        .unwrap_err();
        assert!(err.contains("instruction limit"), "got: {err}");
    }

    #[test]
    fn parse_seed_on_gemm_and_layer() {
        let c = parse(&argv("layer --model resnet50 --name conv1 --seed 123")).unwrap();
        assert_eq!(
            c,
            Command::Layer {
                model: "resnet50".into(),
                name: "conv1".into(),
                pattern: NmPattern::P2_4,
                seed: Some(123),
            }
        );
        assert!(parse(&argv("gemm --rows 8 --inner 32 --cols 16 --seed x"))
            .unwrap_err()
            .contains("integer"));
        assert!(parse(&argv("layer --model resnet50 --name conv1 --seed x"))
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn int8_model_presets_resolve() {
        let m = model_by_name("resnet50-int8").unwrap();
        assert_eq!(m.name, "ResNet50-int8");
        assert!(m.precision.is_int());
        assert!(model_by_name("densenet121-int8").is_ok());
        assert!(model_by_name("inceptionv3-int8").is_ok());
    }

    #[test]
    fn transformer_presets_resolve() {
        use indexmac::kernels::ElemType;
        for (name, want) in [
            ("bert-base", "BERT-base"),
            ("gpt2-small", "GPT-2-small"),
            ("vit-b16", "ViT-B/16"),
        ] {
            let m = model_by_name(name).unwrap();
            assert_eq!(m.name, want);
            assert_eq!(m.family, ModelFamily::Transformer);
            assert_eq!(m.layers.len(), 72);
            let q = model_by_name(&format!("{name}-int8")).unwrap();
            assert_eq!(q.precision, ElemType::I8);
            assert_eq!(q.name, format!("{want}-int8"));
            assert_eq!(q.layers, m.layers);
        }
        // --seq-len rescales transformer columns and is rejected for CNNs.
        let short = preset_by_name("bert-base", Some(32)).unwrap();
        assert!(short.layers.iter().all(|l| l.gemm.cols == 32));
        assert!(preset_by_name("resnet50", Some(32))
            .unwrap_err()
            .contains("transformer"));
        // An unknown name reports the name, not the --seq-len flag.
        assert!(preset_by_name("bert-bas", Some(32))
            .unwrap_err()
            .contains("unknown model"));
        assert!(preset_by_name("bert-base", Some(0))
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn parse_model_command() {
        let c = parse(&argv(
            "model --preset bert-base --seq-len 64 --sew 8 --caps smoke --seed 9",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Model {
                preset: "bert-base".into(),
                pattern: NmPattern::P2_4,
                seq_len: Some(64),
                sew: Some(Precision::I8),
                caps: GemmCaps::smoke(),
                seed: Some(9),
                max_instructions: None,
                shard_size: None,
                timing: TimingKind::InOrder,
            }
        );
        let c = parse(&argv("model --preset gpt2-small --pattern 1:4")).unwrap();
        assert_eq!(
            c,
            Command::Model {
                preset: "gpt2-small".into(),
                pattern: NmPattern::P1_4,
                seq_len: None,
                sew: None,
                caps: GemmCaps::default_eval(),
                seed: None,
                max_instructions: None,
                shard_size: None,
                timing: TimingKind::InOrder,
            }
        );
        assert!(parse(&argv("model")).unwrap_err().contains("preset"));
        assert!(parse(&argv("model --preset bert-base --caps tiny"))
            .unwrap_err()
            .contains("caps"));
        assert!(parse(&argv("model --preset bert-base --seq-len x"))
            .unwrap_err()
            .contains("integer"));
        assert!(parse(&argv("model --preset bert-base --sew 64"))
            .unwrap_err()
            .contains("sew"));
    }

    #[test]
    fn run_transformer_model_and_layer_smoke() {
        // The whole-network table at smoke caps: 3 distinct shapes.
        run(Command::Model {
            preset: "bert-base".into(),
            pattern: NmPattern::P1_4,
            seq_len: Some(16),
            sew: None,
            caps: GemmCaps::smoke(),
            seed: None,
            max_instructions: None,
            shard_size: None,
            timing: TimingKind::InOrder,
        })
        .unwrap();
        // A quantized preset plus an explicit --sew override both run.
        run(Command::Model {
            preset: "vit-b16-int8".into(),
            pattern: NmPattern::P2_4,
            seq_len: Some(16),
            sew: None,
            caps: GemmCaps::smoke(),
            seed: Some(3),
            max_instructions: None,
            shard_size: None,
            timing: TimingKind::InOrder,
        })
        .unwrap();
        run(Command::Model {
            preset: "gpt2-small".into(),
            pattern: NmPattern::P2_4,
            seq_len: Some(16),
            sew: Some(Precision::I16),
            caps: GemmCaps::smoke(),
            seed: None,
            max_instructions: None,
            shard_size: None,
            timing: TimingKind::InOrder,
        })
        .unwrap();
        // A single transformer layer through the layer command.
        run(Command::Layer {
            model: "bert-base-int8".into(),
            name: "block0.ffn.up".into(),
            pattern: NmPattern::P2_4,
            seed: None,
        })
        .unwrap();
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse(&argv("gemm --rows 8"))
            .unwrap_err()
            .contains("requires"));
        assert!(parse(&argv("gemm --rows x --inner 1 --cols 1"))
            .unwrap_err()
            .contains("integer"));
        assert!(parse(&argv("frob"))
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&argv("gemm --rows"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_pattern("5").is_err());
        assert!(parse_pattern("9:4").is_err());
        assert!(parse_algorithm("gpu").is_err());
        assert!(model_by_name("vgg").is_err());
    }

    #[test]
    fn parse_sweep_defaults_and_overrides() {
        let c = parse(&argv("sweep --dims 8x32x16")).unwrap();
        assert_eq!(
            c,
            Command::Sweep {
                dims: vec![GemmDims {
                    rows: 8,
                    inner: 32,
                    cols: 16
                }],
                patterns: NmPattern::EVALUATED.to_vec(),
                dataflows: vec![Dataflow::BStationary],
                seed: None,
                max_instructions: None,
                shard_size: None,
                threads: None,
                format: OutputFormat::Table,
                algorithm: Algorithm::IndexMac,
                baseline: Algorithm::RowWiseSpmm,
                lmul: 1,
                sew: Precision::F32,
                timing: TimingKind::InOrder,
                store_dir: None,
            }
        );
        let c = parse(&argv(
            "sweep --dims 8x32x16,16x64x32 --patterns 1:4 --dataflows all --seed 7 --threads 2 --format json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Sweep {
                dims: vec![
                    GemmDims {
                        rows: 8,
                        inner: 32,
                        cols: 16
                    },
                    GemmDims {
                        rows: 16,
                        inner: 64,
                        cols: 32
                    },
                ],
                patterns: vec![NmPattern::P1_4],
                dataflows: Dataflow::ALL.to_vec(),
                seed: Some(7),
                max_instructions: None,
                shard_size: None,
                threads: Some(2),
                format: OutputFormat::Json,
                algorithm: Algorithm::IndexMac,
                baseline: Algorithm::RowWiseSpmm,
                lmul: 1,
                sew: Precision::F32,
                timing: TimingKind::InOrder,
                store_dir: None,
            }
        );
    }

    #[test]
    fn parse_sweep_second_generation_flags() {
        // `--algorithm indexmac2` defaults the baseline to the first
        // generation, so the sweep reports vvi-vs-vx out of the box.
        let c = parse(&argv("sweep --dims 8x32x16 --algorithm indexmac2 --lmul 2")).unwrap();
        match c {
            Command::Sweep {
                algorithm,
                baseline,
                lmul,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::IndexMac2);
                assert_eq!(baseline, Algorithm::IndexMac);
                assert_eq!(lmul, 2);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // An explicit baseline wins.
        let c = parse(&argv(
            "sweep --dims 8x32x16 --algorithm indexmac2 --baseline rowwise",
        ))
        .unwrap();
        match c {
            Command::Sweep {
                algorithm,
                baseline,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::IndexMac2);
                assert_eq!(baseline, Algorithm::RowWiseSpmm);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("sweep --dims 8x32x16 --lmul 3"))
            .unwrap_err()
            .contains("lmul"));
        assert!(parse(&argv("sweep --dims 8x32x16 --algorithm gpu"))
            .unwrap_err()
            .contains("algorithm"));
        // Grouping without a second-generation side is rejected, not
        // silently ignored.
        assert!(parse(&argv("sweep --dims 8x32x16 --lmul 2"))
            .unwrap_err()
            .contains("indexmac2"));
        assert!(parse(&argv("gemm --rows 8 --inner 32 --cols 16 --lmul 2"))
            .unwrap_err()
            .contains("indexmac2"));
        assert!(parse(&argv(
            "gemm --rows 8 --inner 32 --cols 16 --algorithm indexmac --lmul 2"
        ))
        .unwrap_err()
        .contains("indexmac2"));
    }

    #[test]
    fn parse_sweep_errors() {
        assert!(parse(&argv("sweep"))
            .unwrap_err()
            .contains("requires --dims"));
        assert!(parse(&argv("sweep --dims 8x32"))
            .unwrap_err()
            .contains("RxKxN"));
        assert!(parse(&argv("sweep --dims 0x32x16"))
            .unwrap_err()
            .contains("RxKxN"));
        assert!(parse(&argv("sweep --dims 8x32x16 --dataflows d"))
            .unwrap_err()
            .contains("dataflow"));
        assert!(parse(&argv("sweep --dims 8x32x16 --format csv"))
            .unwrap_err()
            .contains("format"));
        assert!(parse(&argv("sweep --dims 8x32x16 --threads 0"))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&argv("sweep --dims 8x32x16 --seed x"))
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn run_small_sweep_all_formats() {
        for format in [
            OutputFormat::Table,
            OutputFormat::Json,
            OutputFormat::JsonPretty,
        ] {
            run(Command::Sweep {
                dims: vec![GemmDims {
                    rows: 4,
                    inner: 16,
                    cols: 8,
                }],
                patterns: vec![NmPattern::P1_4],
                dataflows: vec![Dataflow::BStationary],
                seed: Some(3),
                max_instructions: None,
                shard_size: None,
                threads: Some(2),
                format,
                algorithm: Algorithm::IndexMac,
                baseline: Algorithm::RowWiseSpmm,
                lmul: 1,
                sew: Precision::F32,
                timing: TimingKind::InOrder,
                store_dir: None,
            })
            .unwrap();
        }
    }

    #[test]
    fn run_second_generation_sweep() {
        run(Command::Sweep {
            dims: vec![GemmDims {
                rows: 4,
                inner: 16,
                cols: 8,
            }],
            patterns: NmPattern::EVALUATED.to_vec(),
            dataflows: vec![Dataflow::BStationary],
            seed: Some(3),
            max_instructions: None,
            shard_size: None,
            threads: Some(2),
            format: OutputFormat::Table,
            algorithm: Algorithm::IndexMac2,
            baseline: Algorithm::IndexMac,
            lmul: 2,
            sew: Precision::F32,
            timing: TimingKind::InOrder,
            store_dir: None,
        })
        .unwrap();
    }

    #[test]
    fn parse_serve_and_store_flags() {
        let c = parse(&argv("sweep --dims 8x32x16 --store-dir /tmp/s")).unwrap();
        match c {
            Command::Sweep { store_dir, .. } => {
                assert_eq!(store_dir.as_deref(), Some("/tmp/s"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("serve --store-dir /tmp/s")).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                threads: 0,
                store_dir: "/tmp/s".into(),
                algorithm: Algorithm::IndexMac,
                baseline: Algorithm::RowWiseSpmm,
                lmul: 1,
                sew: Precision::F32,
                max_instructions: None,
                timing: TimingKind::InOrder,
            }
        );
        // The campaign axes obey the same defaulting rules as `sweep`
        // (they feed the digest, so they must agree).
        let c = parse(&argv(
            "serve --store-dir /tmp/s --addr 0.0.0.0:8080 --threads 4 --sew 8",
        ))
        .unwrap();
        match c {
            Command::Serve {
                addr,
                threads,
                sew,
                algorithm,
                baseline,
                ..
            } => {
                assert_eq!(addr, "0.0.0.0:8080");
                assert_eq!(threads, 4);
                assert_eq!(sew, Precision::I8);
                assert_eq!(algorithm, Algorithm::IndexMac2);
                assert_eq!(baseline, Algorithm::IndexMac);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&argv("serve")).unwrap_err().contains("store-dir"));
        assert!(parse(&argv("serve --store-dir /tmp/s --lmul 3"))
            .unwrap_err()
            .contains("lmul"));
    }

    #[test]
    fn run_sweep_with_store_dir_twice() {
        let dir = std::env::temp_dir().join(format!("indexmac-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = || Command::Sweep {
            dims: vec![GemmDims {
                rows: 4,
                inner: 16,
                cols: 8,
            }],
            patterns: vec![NmPattern::P1_4],
            dataflows: vec![Dataflow::BStationary],
            seed: Some(3),
            max_instructions: None,
            shard_size: None,
            threads: Some(2),
            format: OutputFormat::Json,
            algorithm: Algorithm::IndexMac,
            baseline: Algorithm::RowWiseSpmm,
            lmul: 1,
            sew: Precision::F32,
            timing: TimingKind::InOrder,
            store_dir: Some(dir.to_string_lossy().into_owned()),
        };
        run(cmd()).unwrap(); // cold: simulates and persists
        run(cmd()).unwrap(); // warm: served entirely from the store
        assert!(dir.join("results.log").exists());
        assert!(dir.join("index.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_config_and_small_gemm() {
        run(Command::Config).unwrap();
        run(Command::Gemm {
            dims: GemmDims {
                rows: 4,
                inner: 16,
                cols: 8,
            },
            pattern: NmPattern::P1_4,
            algorithm: Some(Algorithm::IndexMac),
            unroll: 2,
            tile_rows: 16,
            lmul: 1,
            sew: Precision::F32,
            seed: None,
            max_instructions: None,
            shard_size: None,
            timing: TimingKind::InOrder,
        })
        .unwrap();
        run(Command::Gemm {
            dims: GemmDims {
                rows: 4,
                inner: 16,
                cols: 8,
            },
            pattern: NmPattern::P1_4,
            algorithm: Some(Algorithm::IndexMac2),
            unroll: 4,
            tile_rows: 16,
            lmul: 4,
            sew: Precision::F32,
            seed: None,
            max_instructions: None,
            shard_size: None,
            timing: TimingKind::InOrder,
        })
        .unwrap();
        // The acceptance path: quantized vvi run, bit-exact verification.
        run(Command::Gemm {
            dims: GemmDims {
                rows: 4,
                inner: 16,
                cols: 8,
            },
            pattern: NmPattern::P1_4,
            algorithm: Some(Algorithm::IndexMac2),
            unroll: 4,
            tile_rows: 16,
            lmul: 1,
            sew: Precision::I8,
            seed: Some(5),
            max_instructions: None,
            shard_size: None,
            timing: TimingKind::InOrder,
        })
        .unwrap();
    }

    #[test]
    fn parse_timing_flag_on_gemm_model_and_sweep() {
        let c = parse(&argv("gemm --rows 8 --inner 32 --cols 16 --timing ooo")).unwrap();
        match c {
            Command::Gemm { timing, .. } => assert_eq!(timing, TimingKind::OutOfOrder),
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("model --preset bert-base --timing pipelined")).unwrap();
        match c {
            Command::Model { timing, .. } => assert_eq!(timing, TimingKind::Pipelined),
            other => panic!("wrong parse: {other:?}"),
        }
        let c = parse(&argv("sweep --dims 8x32x16 --timing inorder")).unwrap();
        match c {
            Command::Sweep { timing, .. } => assert_eq!(timing, TimingKind::InOrder),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(
            parse(&argv("gemm --rows 8 --inner 32 --cols 16 --timing warp"))
                .unwrap_err()
                .contains("timing backend")
        );
        assert!(USAGE.contains("--timing inorder|pipelined|ooo"));
    }

    #[test]
    fn run_gemm_smoke_under_every_backend() {
        for kind in TimingKind::ALL {
            run(Command::Gemm {
                dims: GemmDims {
                    rows: 4,
                    inner: 16,
                    cols: 8,
                },
                pattern: NmPattern::P1_4,
                algorithm: None,
                unroll: 2,
                tile_rows: 16,
                lmul: 1,
                sew: Precision::F32,
                seed: None,
                max_instructions: None,
                shard_size: None,
                timing: kind,
            })
            .unwrap();
        }
    }

    #[test]
    fn run_layer_lookup_failure() {
        let err = run(Command::Layer {
            model: "resnet50".into(),
            name: "nope".into(),
            pattern: NmPattern::P1_4,
            seed: None,
        })
        .unwrap_err();
        assert!(err.contains("no layer"));
    }
}
