//! The sweep daemon: a bounded job queue and a worker pool over the
//! persistent [`ResultStore`], with request coalescing.
//!
//! Submission path for one cell:
//!
//! 1. digest the `(cell, campaign)` pair — [`config_digest`];
//! 2. **store hit** → the result is delivered immediately (LRU or log);
//! 3. **in-flight elsewhere** → the request *coalesces*: its waiter is
//!    appended to the digest's waiter list and the cell is **not**
//!    enqueued again — two concurrent requests for the same digest
//!    simulate once;
//! 4. otherwise → a job enters the bounded queue (submission blocks
//!    when the queue is full — backpressure instead of unbounded
//!    memory) and a worker simulates it with
//!    [`run_cell`], whose per-thread `ExecContext` keeps the simulator
//!    and decode cache warm across jobs on the same worker.
//!
//! Shutdown is a graceful drain: workers finish every queued job and
//! deliver every waiter before joining, so no submitted request is ever
//! dropped.

use crate::store::{ResultStore, StoreStats};
use indexmac::digest::{config_digest, Digest};
use indexmac::experiment::ExperimentConfig;
use indexmac::sweep::{run_cell, CellResult, SweepCell, SweepGrid, SweepResult};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a submitted cell was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Served from the store without simulating.
    Hit,
    /// Enqueued for simulation (first request for this digest).
    Miss,
    /// Attached to an already-in-flight simulation of the same digest.
    Coalesced,
}

impl CellStatus {
    /// Stable JSON tag: `hit`, `computed` or `coalesced`.
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Hit => "hit",
            CellStatus::Miss => "computed",
            CellStatus::Coalesced => "coalesced",
        }
    }
}

/// A pending submission: how it was routed plus the channel the result
/// arrives on (already-delivered for hits).
pub struct Pending {
    /// Routing outcome of the submission.
    pub status: CellStatus,
    /// The cell's content digest (the store key).
    pub digest: Digest,
    rx: mpsc::Receiver<Result<CellResult, String>>,
}

impl Pending {
    /// Blocks until the result is available.
    ///
    /// # Errors
    ///
    /// Simulation errors are stringified (they carry no results); a
    /// disconnected worker maps to an error rather than a panic.
    pub fn wait(self) -> Result<CellResult, String> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err("worker dropped without delivering a result".into()))
    }
}

/// Monotonic counters across the daemon's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct DaemonStats {
    /// Submissions served straight from the store.
    pub hits: u64,
    /// Submissions that enqueued a simulation.
    pub misses: u64,
    /// Submissions that attached to an in-flight simulation.
    pub coalesced: u64,
    /// Simulations actually executed by workers (the invariant under
    /// coalescing: `computed <= misses`, and `computed` counts each
    /// distinct digest once however many clients asked for it).
    pub computed: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Store counters at the same instant.
    pub store: StoreStats,
}

/// The channel a waiter holds while a worker computes its digest.
type ResultSender = mpsc::Sender<Result<CellResult, String>>;

struct Shared {
    cfg: ExperimentConfig,
    store: Mutex<ResultStore>,
    queue: Mutex<VecDeque<(Digest, SweepCell)>>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_cap: usize,
    inflight: Mutex<HashMap<Digest, Vec<ResultSender>>>,
    shutdown: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    computed: AtomicU64,
}

/// The long-lived sweep service: owns the store, the queue and the
/// worker pool. Cheap to share (`Arc` internally).
pub struct SweepService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Default bound of the work queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

impl SweepService {
    /// Starts `threads` workers over `store`, simulating under `cfg`.
    pub fn start(cfg: ExperimentConfig, store: ResultStore, threads: usize) -> Arc<Self> {
        Self::start_with_queue(cfg, store, threads, DEFAULT_QUEUE_DEPTH)
    }

    /// [`SweepService::start`] with an explicit queue bound.
    pub fn start_with_queue(
        cfg: ExperimentConfig,
        store: ResultStore,
        threads: usize,
        queue_cap: usize,
    ) -> Arc<Self> {
        let shared = Arc::new(Shared {
            cfg,
            store: Mutex::new(store),
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap: queue_cap.max(1),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            computed: AtomicU64::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sweep-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Arc::new(Self {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The campaign configuration every cell runs under.
    pub fn config(&self) -> &ExperimentConfig {
        &self.shared.cfg
    }

    /// Submits one cell. Never blocks on simulation — only (briefly) on
    /// the store lock, and on the queue bound when the daemon is
    /// saturated.
    pub fn submit(&self, cell: SweepCell) -> Pending {
        let digest = config_digest(&cell, &self.shared.cfg);
        let (tx, rx) = mpsc::channel();

        // Store first: the hot path is a hit served at memory speed.
        // The inflight check happens *before* the store lock drops —
        // workers persist a result before deregistering it from
        // `inflight` (and need the store lock to do so), so a store
        // miss observed here guarantees any concurrent simulation of
        // this digest is still registered. Without that ordering a
        // worker could finish between the two checks and the digest
        // would be simulated twice.
        let mut store = self.shared.store.lock().unwrap();
        if let Some(result) = store.get(digest) {
            drop(store);
            self.shared.hits.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Ok(result));
            return Pending {
                status: CellStatus::Hit,
                digest,
                rx,
            };
        }
        let mut inflight = self.shared.inflight.lock().unwrap();
        drop(store);
        // Coalesce with an in-flight simulation of the same digest.
        if let Some(waiters) = inflight.get_mut(&digest) {
            waiters.push(tx);
            self.shared.coalesced.fetch_add(1, Ordering::Relaxed);
            return Pending {
                status: CellStatus::Coalesced,
                digest,
                rx,
            };
        }
        inflight.insert(digest, vec![tx]);
        drop(inflight);

        // First request: enqueue, respecting the bound.
        self.shared.misses.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.shared.queue.lock().unwrap();
        while queue.len() >= self.shared.queue_cap {
            queue = self.shared.not_full.wait(queue).unwrap();
        }
        queue.push_back((digest, cell));
        drop(queue);
        self.shared.not_empty.notify_one();
        Pending {
            status: CellStatus::Miss,
            digest,
            rx,
        }
    }

    /// Runs a whole grid through the daemon: submits every cell, then
    /// waits for all of them in grid order. Equivalent to
    /// [`indexmac::sweep::run_grid`] on a cold store; bit-identical and
    /// near-instant on a warm one.
    ///
    /// # Errors
    ///
    /// The first failing cell's stringified error, in grid order.
    pub fn sweep_grid(&self, grid: &SweepGrid) -> Result<(SweepResult, Vec<CellStatus>), String> {
        let pending: Vec<Pending> = grid.cells().into_iter().map(|c| self.submit(c)).collect();
        let statuses: Vec<CellStatus> = pending.iter().map(|p| p.status).collect();
        let mut cells = Vec::with_capacity(pending.len());
        for p in pending {
            cells.push(p.wait()?);
        }
        Ok((
            SweepResult {
                base_seed: grid.base_seed,
                threads: self.workers.lock().unwrap().len().max(1),
                precision: self.shared.cfg.precision,
                timing: self.shared.cfg.sim.timing,
                cells,
            },
            statuses,
        ))
    }

    /// Looks a digest up in the store without simulating anything
    /// (the `GET /cell/<digest>` route).
    pub fn lookup(&self, digest: Digest) -> Option<CellResult> {
        self.shared.store.lock().unwrap().get(digest)
    }

    /// Counters snapshot (the `GET /stats` route).
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            computed: self.shared.computed.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.lock().unwrap().len(),
            store: self.shared.store.lock().unwrap().stats(),
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Flags shutdown without joining anything — the `POST /shutdown`
    /// handler runs on a connection thread the accept loop owns, so it
    /// must not block on worker joins itself. The accept loop notices
    /// the flag and performs the actual [`Self::shutdown`] drain.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Graceful drain: workers finish every queued job, deliver every
    /// waiter, then exit; the store is flushed. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        let workers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
        let _ = self.shared.store.lock().unwrap().flush();
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.not_full.notify_one();
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.not_empty.wait(queue).unwrap();
            }
        };
        let Some((digest, cell)) = job else { return };

        // Simulate on this worker's warm per-thread context (reused
        // simulator + decode-once program cache in `indexmac::experiment`).
        let outcome = run_cell(cell, &shared.cfg).map_err(|e| e.to_string());
        shared.computed.fetch_add(1, Ordering::Relaxed);

        if let Ok(result) = &outcome {
            // Persist before waking waiters so a follow-up request from
            // a woken client is guaranteed a store hit.
            let _ = shared.store.lock().unwrap().put(digest, result);
        }

        let waiters = shared
            .inflight
            .lock()
            .unwrap()
            .remove(&digest)
            .unwrap_or_default();
        for tx in waiters {
            let _ = tx.send(outcome.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac::kernels::GemmDims;
    use indexmac::sparse::NmPattern;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("indexmac-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new(
            NmPattern::EVALUATED.to_vec(),
            vec![GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            }],
        )
    }

    #[test]
    fn cold_then_warm_sweep_matches_run_grid() {
        let dir = temp_dir("coldwarm");
        let cfg = ExperimentConfig::fast();
        let reference = indexmac::sweep::run_grid_serial(&small_grid(), &cfg).unwrap();

        let store = ResultStore::open(&dir).unwrap();
        let service = SweepService::start(cfg, store, 2);
        let (cold, cold_status) = service.sweep_grid(&small_grid()).unwrap();
        assert_eq!(cold.cells, reference.cells, "cold sweep = fresh run_grid");
        assert!(cold_status.iter().all(|s| *s != CellStatus::Hit));

        let (warm, warm_status) = service.sweep_grid(&small_grid()).unwrap();
        assert_eq!(warm.cells, reference.cells, "warm sweep is bit-identical");
        assert!(
            warm_status.iter().all(|s| *s == CellStatus::Hit),
            "every warm cell is a store hit: {warm_status:?}"
        );
        let stats = service.stats();
        assert_eq!(stats.computed, 2, "each digest simulated exactly once");
        assert_eq!(stats.hits, 2);
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn results_survive_service_restart() {
        let dir = temp_dir("restart");
        let cfg = ExperimentConfig::fast();
        {
            let service = SweepService::start(cfg, ResultStore::open(&dir).unwrap(), 1);
            service.sweep_grid(&small_grid()).unwrap();
            service.shutdown();
        }
        let service = SweepService::start(cfg, ResultStore::open(&dir).unwrap(), 1);
        let (warm, statuses) = service.sweep_grid(&small_grid()).unwrap();
        assert!(statuses.iter().all(|s| *s == CellStatus::Hit));
        let reference = indexmac::sweep::run_grid_serial(&small_grid(), &cfg).unwrap();
        assert_eq!(warm.cells, reference.cells);
        assert_eq!(service.stats().computed, 0, "nothing re-simulated");
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lookup_finds_stored_digests_only() {
        let dir = temp_dir("lookup");
        let cfg = ExperimentConfig::fast();
        let service = SweepService::start(cfg, ResultStore::open(&dir).unwrap(), 1);
        let cell = small_grid().cells()[0];
        let digest = config_digest(&cell, &cfg);
        assert!(service.lookup(digest).is_none());
        let result = service.submit(cell).wait().unwrap();
        assert_eq!(service.lookup(digest), Some(result));
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let dir = temp_dir("drain");
        let cfg = ExperimentConfig::fast();
        let service = SweepService::start(cfg, ResultStore::open(&dir).unwrap(), 1);
        let pending: Vec<Pending> = small_grid()
            .cells()
            .into_iter()
            .map(|c| service.submit(c))
            .collect();
        service.shutdown();
        for p in pending {
            assert!(p.wait().is_ok(), "drained jobs still deliver results");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
