//! Property tests: encode/decode round-trip over the whole subset.

use indexmac_isa::instr::FReg;
use indexmac_isa::{decode, encode, Instruction, Lmul, Sew, VReg, XReg};
use proptest::prelude::*;

fn xreg() -> impl Strategy<Value = XReg> {
    (0u8..32).prop_map(XReg::new)
}

fn xreg_nonzero() -> impl Strategy<Value = XReg> {
    (1u8..32).prop_map(XReg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(VReg::new)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..2048
}

/// Strategy over instructions with a canonical single-word encoding
/// (pseudo-forms like wide `li`, `mv` and `nop` aliases are exercised in
/// dedicated tests instead).
fn encodable() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (
            xreg_nonzero(),
            xreg_nonzero(),
            (-2047i32..2048).prop_filter("non-mv", |i| *i != 0)
        )
            .prop_map(|(rd, rs1, imm)| Instruction::Addi { rd, rs1, imm }),
        (xreg(), xreg(), xreg()).prop_map(|(rd, rs1, rs2)| Instruction::Add { rd, rs1, rs2 }),
        (xreg(), xreg(), xreg()).prop_map(|(rd, rs1, rs2)| Instruction::Sub { rd, rs1, rs2 }),
        (xreg(), xreg(), xreg()).prop_map(|(rd, rs1, rs2)| Instruction::Mul { rd, rs1, rs2 }),
        (xreg(), xreg(), 0u8..64).prop_map(|(rd, rs1, shamt)| Instruction::Slli { rd, rs1, shamt }),
        (xreg(), xreg(), 0u8..64).prop_map(|(rd, rs1, shamt)| Instruction::Srli { rd, rs1, shamt }),
        (xreg(), xreg(), imm12()).prop_map(|(rd, rs1, imm)| Instruction::Lw { rd, rs1, imm }),
        (xreg(), xreg(), imm12()).prop_map(|(rd, rs1, imm)| Instruction::Lwu { rd, rs1, imm }),
        (xreg(), xreg(), imm12()).prop_map(|(rd, rs1, imm)| Instruction::Ld { rd, rs1, imm }),
        (xreg(), xreg(), imm12()).prop_map(|(rs2, rs1, imm)| Instruction::Sw { rs2, rs1, imm }),
        (xreg(), xreg(), imm12()).prop_map(|(rs2, rs1, imm)| Instruction::Sd { rs2, rs1, imm }),
        (xreg(), xreg(), -1024i32..1024).prop_map(|(rs1, rs2, offset)| Instruction::Beq {
            rs1,
            rs2,
            offset
        }),
        (xreg(), xreg(), -1024i32..1024).prop_map(|(rs1, rs2, offset)| Instruction::Bne {
            rs1,
            rs2,
            offset
        }),
        (xreg(), xreg(), -1024i32..1024).prop_map(|(rs1, rs2, offset)| Instruction::Blt {
            rs1,
            rs2,
            offset
        }),
        (xreg(), xreg(), -1024i32..1024).prop_map(|(rs1, rs2, offset)| Instruction::Bge {
            rs1,
            rs2,
            offset
        }),
        (xreg(), -10000i32..10000).prop_map(|(rd, offset)| Instruction::Jal { rd, offset }),
        Just(Instruction::Halt),
        (freg(), xreg(), imm12()).prop_map(|(fd, rs1, imm)| Instruction::Flw { fd, rs1, imm }),
        (
            xreg(),
            xreg(),
            prop_oneof![
                Just(Sew::E8),
                Just(Sew::E16),
                Just(Sew::E32),
                Just(Sew::E64)
            ],
            prop_oneof![Just(Lmul::M1), Just(Lmul::M2), Just(Lmul::M4)],
        )
            .prop_map(|(rd, rs1, sew, lmul)| Instruction::Vsetvli { rd, rs1, sew, lmul }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instruction::Vle8 { vd, rs1 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instruction::Vle16 { vd, rs1 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instruction::Vle32 { vd, rs1 }),
        (vreg(), xreg()).prop_map(|(vs3, rs1)| Instruction::Vse8 { vs3, rs1 }),
        (vreg(), xreg()).prop_map(|(vs3, rs1)| Instruction::Vse16 { vs3, rs1 }),
        (vreg(), xreg()).prop_map(|(vs3, rs1)| Instruction::Vse32 { vs3, rs1 }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VaddVv { vd, vs2, vs1 }),
        (vreg(), vreg(), xreg()).prop_map(|(vd, vs2, rs1)| Instruction::VaddVx { vd, vs2, rs1 }),
        (vreg(), vreg(), -16i8..16).prop_map(|(vd, vs2, imm)| Instruction::VaddVi { vd, vs2, imm }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VmulVv { vd, vs2, vs1 }),
        (vreg(), vreg(), xreg()).prop_map(|(vd, vs2, rs1)| Instruction::VmulVx { vd, vs2, rs1 }),
        (vreg(), xreg(), vreg()).prop_map(|(vd, rs1, vs2)| Instruction::VmaccVx { vd, rs1, vs2 }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VfaddVv { vd, vs2, vs1 }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs2, vs1)| Instruction::VfmulVv { vd, vs2, vs1 }),
        (vreg(), freg(), vreg()).prop_map(|(vd, fs1, vs2)| Instruction::VfmaccVf { vd, fs1, vs2 }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs1, vs2)| Instruction::VfmaccVv { vd, vs1, vs2 }),
        (vreg(), vreg()).prop_map(|(vd, vs1)| Instruction::VmvVv { vd, vs1 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instruction::VmvVx { vd, rs1 }),
        (xreg(), vreg()).prop_map(|(rd, vs2)| Instruction::VmvXs { rd, vs2 }),
        (vreg(), xreg()).prop_map(|(vd, rs1)| Instruction::VmvSx { vd, rs1 }),
        (freg(), vreg()).prop_map(|(fd, vs2)| Instruction::VfmvFs { fd, vs2 }),
        (vreg(), vreg(), xreg()).prop_map(|(vd, vs2, rs1)| Instruction::Vslide1downVx {
            vd,
            vs2,
            rs1
        }),
        (vreg(), vreg(), 0u8..32).prop_map(|(vd, vs2, imm)| Instruction::VslidedownVi {
            vd,
            vs2,
            imm
        }),
        (vreg(), vreg(), xreg()).prop_map(|(vd, vs2, rs)| Instruction::VindexmacVx { vd, vs2, rs }),
        (vreg(), vreg(), vreg(), 0u8..32)
            .prop_map(|(vd, vs2, vs1, slot)| { Instruction::VindexmacVvi { vd, vs2, vs1, slot } }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Strong round-trip: re-encoding the decode of an encoding is stable.
    #[test]
    fn encode_decode_reencode_fixpoint(i in encodable()) {
        let w = encode(&i).expect("strategy only yields encodable instructions");
        let d = decode(w).expect("own encodings must decode");
        let w2 = encode(&d).expect("decoded instruction must re-encode");
        prop_assert_eq!(w, w2, "instr {} decoded to {}", i, d);
    }

    /// For non-aliased instructions the round trip is exact.
    #[test]
    fn exact_roundtrip_for_vector_ops(
        vd in vreg(), vs2 in vreg(), rs in xreg(),
    ) {
        for i in [
            Instruction::VindexmacVx { vd, vs2, rs },
            Instruction::Vslide1downVx { vd, vs2, rs1: rs },
            Instruction::VmaccVx { vd, rs1: rs, vs2 },
            Instruction::Vle8 { vd, rs1: rs },
            Instruction::Vle16 { vd, rs1: rs },
            Instruction::Vle32 { vd, rs1: rs },
            Instruction::Vse8 { vs3: vd, rs1: rs },
            Instruction::Vse16 { vs3: vd, rs1: rs },
            Instruction::Vse32 { vs3: vd, rs1: rs },
        ] {
            let w = encode(&i).unwrap();
            prop_assert_eq!(decode(w).unwrap(), i);
        }
    }

    /// Decode never panics on arbitrary words.
    #[test]
    fn decode_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// Display never produces an empty string.
    #[test]
    fn display_nonempty(i in encodable()) {
        prop_assert!(!i.to_string().is_empty());
    }
}
