//! Modelling of the RVV `vtype` CSR: element width, register grouping
//! and the `vl` rules of `vsetvli`.
//!
//! The paper's kernels fix LMUL = 1; the second-generation
//! `vindexmac.vvi` kernels (after arXiv 2501.10189) additionally use
//! register grouping `m2`/`m4` to keep wider B tiles resident, so
//! `vtype` models both SEW and LMUL.

use std::fmt;

/// Vector register grouping (LMUL). Only the integral groupings the
/// second-generation kernels use are modelled; fractional LMUL and `m8`
/// are outside the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Lmul {
    /// No grouping — one architectural register per operand.
    #[default]
    M1,
    /// Groups of two registers (`v0v1`, `v2v3`, ...).
    M2,
    /// Groups of four registers (`v0..v3`, `v4..v7`, ...).
    M4,
}

impl Lmul {
    /// All modelled groupings, in ascending group size.
    pub const ALL: [Lmul; 3] = [Lmul::M1, Lmul::M2, Lmul::M4];

    /// Number of architectural registers per group.
    pub fn factor(self) -> usize {
        match self {
            Lmul::M1 => 1,
            Lmul::M2 => 2,
            Lmul::M4 => 4,
        }
    }

    /// Creates a grouping from its register factor.
    pub fn from_factor(factor: usize) -> Option<Self> {
        match factor {
            1 => Some(Lmul::M1),
            2 => Some(Lmul::M2),
            4 => Some(Lmul::M4),
            _ => None,
        }
    }

    /// The `vlmul[2:0]` encoding used in the `vtype` CSR.
    pub fn encoding(self) -> u32 {
        match self {
            Lmul::M1 => 0b000,
            Lmul::M2 => 0b001,
            Lmul::M4 => 0b010,
        }
    }

    /// Decodes a `vlmul` field.
    pub fn from_encoding(bits: u32) -> Option<Self> {
        match bits {
            0b000 => Some(Lmul::M1),
            0b001 => Some(Lmul::M2),
            0b010 => Some(Lmul::M4),
            _ => None,
        }
    }
}

impl fmt::Display for Lmul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.factor())
    }
}

/// Selected element width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements — the paper's configuration (Table I).
    #[default]
    E32,
    /// 64-bit elements.
    E64,
}

impl Sew {
    /// Element width in bits.
    pub fn bits(self) -> usize {
        match self {
            Sew::E8 => 8,
            Sew::E16 => 16,
            Sew::E32 => 32,
            Sew::E64 => 64,
        }
    }

    /// Element width in bytes.
    pub fn bytes(self) -> usize {
        self.bits() / 8
    }

    /// The `vsew[2:0]` encoding used in the `vtype` CSR.
    pub fn encoding(self) -> u32 {
        match self {
            Sew::E8 => 0b000,
            Sew::E16 => 0b001,
            Sew::E32 => 0b010,
            Sew::E64 => 0b011,
        }
    }

    /// Decodes a `vsew` field.
    pub fn from_encoding(bits: u32) -> Option<Self> {
        match bits {
            0b000 => Some(Sew::E8),
            0b001 => Some(Sew::E16),
            0b010 => Some(Sew::E32),
            0b011 => Some(Sew::E64),
            _ => None,
        }
    }
}

impl fmt::Display for Sew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.bits())
    }
}

/// The dynamic vector-type state: SEW and LMUL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VType {
    /// Selected element width.
    pub sew: Sew,
    /// Selected register grouping.
    pub lmul: Lmul,
}

impl VType {
    /// Maximum vector length (elements per register *group*) for a
    /// hardware `vlen` in bits: `VLMAX = LMUL * vlen / SEW`.
    pub fn vlmax(self, vlen_bits: usize) -> usize {
        self.lmul.factor() * vlen_bits / self.sew.bits()
    }

    /// The `vl` that `vsetvli` grants for an application vector length
    /// `avl`: `min(avl, VLMAX)` (the standard "all of it or VLMAX" rule).
    pub fn grant_vl(self, avl: usize, vlen_bits: usize) -> usize {
        avl.min(self.vlmax(vlen_bits))
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},{}", self.sew, self.lmul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sew_widths() {
        assert_eq!(Sew::E8.bits(), 8);
        assert_eq!(Sew::E32.bytes(), 4);
        assert_eq!(Sew::E64.bits(), 64);
    }

    #[test]
    fn sew_encoding_roundtrip() {
        for sew in [Sew::E8, Sew::E16, Sew::E32, Sew::E64] {
            assert_eq!(Sew::from_encoding(sew.encoding()), Some(sew));
        }
        assert_eq!(Sew::from_encoding(0b111), None);
    }

    #[test]
    fn vlmax_matches_table_i() {
        // 512-bit VLEN with 32-bit elements -> 16 elements (Table I).
        let vt = VType {
            sew: Sew::E32,
            lmul: Lmul::M1,
        };
        assert_eq!(vt.vlmax(512), 16);
        assert_eq!(vt.vlmax(256), 8);
        assert_eq!(
            VType {
                sew: Sew::E64,
                lmul: Lmul::M1
            }
            .vlmax(512),
            8
        );
    }

    #[test]
    fn vlmax_scales_with_grouping() {
        let m2 = VType {
            sew: Sew::E32,
            lmul: Lmul::M2,
        };
        let m4 = VType {
            sew: Sew::E32,
            lmul: Lmul::M4,
        };
        assert_eq!(m2.vlmax(512), 32);
        assert_eq!(m4.vlmax(512), 64);
        assert_eq!(m4.grant_vl(100, 512), 64);
    }

    #[test]
    fn grant_vl_rule() {
        let vt = VType {
            sew: Sew::E32,
            lmul: Lmul::M1,
        };
        assert_eq!(vt.grant_vl(100, 512), 16);
        assert_eq!(vt.grant_vl(7, 512), 7);
        assert_eq!(vt.grant_vl(0, 512), 0);
        assert_eq!(vt.grant_vl(16, 512), 16);
    }

    #[test]
    fn lmul_factor_roundtrip() {
        for lmul in Lmul::ALL {
            assert_eq!(Lmul::from_factor(lmul.factor()), Some(lmul));
            assert_eq!(Lmul::from_encoding(lmul.encoding()), Some(lmul));
        }
        assert_eq!(Lmul::from_factor(3), None);
        assert_eq!(Lmul::from_factor(8), None);
        assert_eq!(Lmul::from_encoding(0b011), None);
        assert_eq!(Lmul::from_encoding(0b111), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Sew::E32.to_string(), "e32");
        assert_eq!(Lmul::M2.to_string(), "m2");
        assert_eq!(VType::default().to_string(), "e32,m1");
        assert_eq!(
            VType {
                sew: Sew::E32,
                lmul: Lmul::M4
            }
            .to_string(),
            "e32,m4"
        );
    }
}
