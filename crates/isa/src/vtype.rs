//! Modelling of the RVV `vtype` CSR: element width and the `vl` rules of
//! `vsetvli`.
//!
//! The simulated machine fixes LMUL = 1 (the paper's kernels never group
//! registers), so `vtype` reduces to the selected element width (SEW).

use std::fmt;

/// Selected element width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements — the paper's configuration (Table I).
    #[default]
    E32,
    /// 64-bit elements.
    E64,
}

impl Sew {
    /// Element width in bits.
    pub fn bits(self) -> usize {
        match self {
            Sew::E8 => 8,
            Sew::E16 => 16,
            Sew::E32 => 32,
            Sew::E64 => 64,
        }
    }

    /// Element width in bytes.
    pub fn bytes(self) -> usize {
        self.bits() / 8
    }

    /// The `vsew[2:0]` encoding used in the `vtype` CSR.
    pub fn encoding(self) -> u32 {
        match self {
            Sew::E8 => 0b000,
            Sew::E16 => 0b001,
            Sew::E32 => 0b010,
            Sew::E64 => 0b011,
        }
    }

    /// Decodes a `vsew` field.
    pub fn from_encoding(bits: u32) -> Option<Self> {
        match bits {
            0b000 => Some(Sew::E8),
            0b001 => Some(Sew::E16),
            0b010 => Some(Sew::E32),
            0b011 => Some(Sew::E64),
            _ => None,
        }
    }
}

impl fmt::Display for Sew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.bits())
    }
}

/// The dynamic vector-type state: SEW (LMUL fixed at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct VType {
    /// Selected element width.
    pub sew: Sew,
}

impl VType {
    /// Maximum vector length (elements per register) for a hardware
    /// `vlen` in bits: `VLMAX = vlen / SEW`.
    pub fn vlmax(self, vlen_bits: usize) -> usize {
        vlen_bits / self.sew.bits()
    }

    /// The `vl` that `vsetvli` grants for an application vector length
    /// `avl`: `min(avl, VLMAX)` (the standard "all of it or VLMAX" rule).
    pub fn grant_vl(self, avl: usize, vlen_bits: usize) -> usize {
        avl.min(self.vlmax(vlen_bits))
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{},m1", self.sew)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sew_widths() {
        assert_eq!(Sew::E8.bits(), 8);
        assert_eq!(Sew::E32.bytes(), 4);
        assert_eq!(Sew::E64.bits(), 64);
    }

    #[test]
    fn sew_encoding_roundtrip() {
        for sew in [Sew::E8, Sew::E16, Sew::E32, Sew::E64] {
            assert_eq!(Sew::from_encoding(sew.encoding()), Some(sew));
        }
        assert_eq!(Sew::from_encoding(0b111), None);
    }

    #[test]
    fn vlmax_matches_table_i() {
        // 512-bit VLEN with 32-bit elements -> 16 elements (Table I).
        let vt = VType { sew: Sew::E32 };
        assert_eq!(vt.vlmax(512), 16);
        assert_eq!(vt.vlmax(256), 8);
        assert_eq!(VType { sew: Sew::E64 }.vlmax(512), 8);
    }

    #[test]
    fn grant_vl_rule() {
        let vt = VType { sew: Sew::E32 };
        assert_eq!(vt.grant_vl(100, 512), 16);
        assert_eq!(vt.grant_vl(7, 512), 7);
        assert_eq!(vt.grant_vl(0, 512), 0);
        assert_eq!(vt.grant_vl(16, 512), 16);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Sew::E32.to_string(), "e32");
        assert_eq!(VType::default().to_string(), "e32,m1");
    }
}
