//! The instruction subset executed by the simulated machine.
//!
//! Scalar RV64 instructions cover address arithmetic, loads/stores and
//! loop control; the vector subset covers the RVV 1.0 operations the
//! paper's kernels need (unit-stride loads/stores, scalar-vector MACs,
//! slides and cross-domain moves) plus the custom `vindexmac.vx`.

use crate::reg::{VReg, XReg};
use crate::vtype::{Lmul, Sew};
use std::fmt;

/// A floating-point scalar register `f0`–`f31`.
///
/// Only the handful of instructions that shuttle values between the
/// vector file and `vfmacc.vf` use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(u8);

impl FReg {
    /// `f0`.
    pub const F0: FReg = FReg(0);
    /// `f1`.
    pub const F1: FReg = FReg(1);
    /// `f2`.
    pub const F2: FReg = FReg(2);
    /// `f3`.
    pub const F3: FReg = FReg(3);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "fp register index {index} out of range");
        FReg(index)
    }

    /// The register index, `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Micro-architectural class of an instruction, used by the timing model
/// to pick latencies and routing (scalar pipe vs vector engine vs memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum InstrClass {
    /// Scalar integer ALU operation.
    ScalarAlu,
    /// Scalar load (L1D path).
    ScalarLoad,
    /// Scalar store (L1D path).
    ScalarStore,
    /// Branch or jump.
    ControlFlow,
    /// `vsetvli` — vector configuration.
    VConfig,
    /// Vector unit-stride load (vector engine -> L2 path).
    VLoad,
    /// Vector unit-stride store (vector engine -> L2 path).
    VStore,
    /// Vector integer/float arithmetic (non-MAC).
    VArith,
    /// Vector multiply-accumulate (longer latency chain on `vd`).
    VMac,
    /// Vector slide/permutation.
    VSlide,
    /// Vector -> scalar move (`vmv.x.s`, `vfmv.f.s`): couples the engine
    /// clock back into the scalar core.
    VMvToScalar,
    /// Scalar -> vector move or broadcast (`vmv.s.x`, `vmv.v.x`).
    VMvFromScalar,
    /// The custom `vindexmac.vx` instruction.
    VIndexMac,
    /// Simulation control (`ebreak`).
    System,
}

impl InstrClass {
    /// Every class, in declaration order: `ALL[c.index()] == c`.
    ///
    /// Dense per-class tables (e.g. the timing model's `ClassCounts`)
    /// index with [`InstrClass::index`] and size with
    /// [`InstrClass::COUNT`]; the `const` block below makes forgetting
    /// to extend this table a compile error rather than a silently
    /// corrupted count.
    pub const ALL: [InstrClass; 14] = [
        InstrClass::ScalarAlu,
        InstrClass::ScalarLoad,
        InstrClass::ScalarStore,
        InstrClass::ControlFlow,
        InstrClass::VConfig,
        InstrClass::VLoad,
        InstrClass::VStore,
        InstrClass::VArith,
        InstrClass::VMac,
        InstrClass::VSlide,
        InstrClass::VMvToScalar,
        InstrClass::VMvFromScalar,
        InstrClass::VIndexMac,
        InstrClass::System,
    ];

    /// Number of classes (`ALL.len()`).
    pub const COUNT: usize = InstrClass::ALL.len();

    /// Dense index of this class — its `#[repr(usize)]` discriminant,
    /// equal to its position in [`InstrClass::ALL`].
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Whether instructions of this class are executed by the decoupled
    /// vector engine (as opposed to the scalar pipeline).
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            InstrClass::VConfig
                | InstrClass::VLoad
                | InstrClass::VStore
                | InstrClass::VArith
                | InstrClass::VMac
                | InstrClass::VSlide
                | InstrClass::VMvToScalar
                | InstrClass::VMvFromScalar
                | InstrClass::VIndexMac
        )
    }

    /// Whether this class accesses memory.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            InstrClass::ScalarLoad
                | InstrClass::ScalarStore
                | InstrClass::VLoad
                | InstrClass::VStore
        )
    }
}

// Compile-time guard for `InstrClass::ALL`: the loop pins every entry's
// discriminant to its table position, and the exhaustive match (no
// wildcard arm) forces a compile error here when a variant is added
// without extending the table.
const _: () = {
    let mut i = 0;
    while i < InstrClass::COUNT {
        assert!(
            InstrClass::ALL[i].index() == i,
            "InstrClass::ALL out of declaration order"
        );
        i += 1;
    }
    match InstrClass::ALL[0] {
        InstrClass::ScalarAlu
        | InstrClass::ScalarLoad
        | InstrClass::ScalarStore
        | InstrClass::ControlFlow
        | InstrClass::VConfig
        | InstrClass::VLoad
        | InstrClass::VStore
        | InstrClass::VArith
        | InstrClass::VMac
        | InstrClass::VSlide
        | InstrClass::VMvToScalar
        | InstrClass::VMvFromScalar
        | InstrClass::VIndexMac
        | InstrClass::System => {}
    }
};

/// One instruction of the modelled ISA.
///
/// Branch offsets are in *instruction slots* relative to the branch
/// itself (the machine encoding multiplies by 4); the [`crate::program::ProgramBuilder`]
/// resolves labels to these offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // operand fields are described by each variant's doc
pub enum Instruction {
    // ---- scalar integer ----
    /// Load-immediate pseudo-instruction (`li rd, imm`).
    Li { rd: XReg, imm: i64 },
    /// `mv rd, rs` (canonically `addi rd, rs, 0`).
    Mv { rd: XReg, rs: XReg },
    /// `addi rd, rs1, imm`.
    Addi { rd: XReg, rs1: XReg, imm: i32 },
    /// `add rd, rs1, rs2`.
    Add { rd: XReg, rs1: XReg, rs2: XReg },
    /// `sub rd, rs1, rs2`.
    Sub { rd: XReg, rs1: XReg, rs2: XReg },
    /// `mul rd, rs1, rs2`.
    Mul { rd: XReg, rs1: XReg, rs2: XReg },
    /// `slli rd, rs1, shamt`.
    Slli { rd: XReg, rs1: XReg, shamt: u8 },
    /// `srli rd, rs1, shamt`.
    Srli { rd: XReg, rs1: XReg, shamt: u8 },
    /// `lw rd, imm(rs1)` — sign-extending 32-bit load.
    Lw { rd: XReg, rs1: XReg, imm: i32 },
    /// `lwu rd, imm(rs1)` — zero-extending 32-bit load.
    Lwu { rd: XReg, rs1: XReg, imm: i32 },
    /// `ld rd, imm(rs1)`.
    Ld { rd: XReg, rs1: XReg, imm: i32 },
    /// `sw rs2, imm(rs1)`.
    Sw { rs2: XReg, rs1: XReg, imm: i32 },
    /// `sd rs2, imm(rs1)`.
    Sd { rs2: XReg, rs1: XReg, imm: i32 },
    /// `beq rs1, rs2, offset`.
    Beq { rs1: XReg, rs2: XReg, offset: i32 },
    /// `bne rs1, rs2, offset`.
    Bne { rs1: XReg, rs2: XReg, offset: i32 },
    /// `blt rs1, rs2, offset` (signed).
    Blt { rs1: XReg, rs2: XReg, offset: i32 },
    /// `bge rs1, rs2, offset` (signed).
    Bge { rs1: XReg, rs2: XReg, offset: i32 },
    /// `jal rd, offset`.
    Jal { rd: XReg, offset: i32 },
    /// `nop`.
    Nop,
    /// `ebreak` — stops the simulation.
    Halt,

    // ---- scalar floating point (minimal) ----
    /// `flw fd, imm(rs1)`.
    Flw { fd: FReg, rs1: XReg, imm: i32 },

    // ---- vector configuration ----
    /// `vsetvli rd, rs1, <sew>,<lmul>` — requests `avl` from `rs1` (or
    /// VLMAX when `rs1` is `x0` and `rd` is not), grants `vl` into `rd`.
    /// With `lmul > 1` subsequent grouped operations span `lmul`
    /// consecutive registers per operand.
    Vsetvli {
        rd: XReg,
        rs1: XReg,
        sew: Sew,
        lmul: Lmul,
    },

    // ---- vector memory ----
    /// `vle8.v vd, (rs1)` — unit-stride 8-bit load of `vl` elements
    /// (requires `vtype.sew = e8` in the modelled subset).
    Vle8 { vd: VReg, rs1: XReg },
    /// `vle16.v vd, (rs1)` — unit-stride 16-bit load of `vl` elements
    /// (requires `vtype.sew = e16`).
    Vle16 { vd: VReg, rs1: XReg },
    /// `vle32.v vd, (rs1)` — unit-stride 32-bit load of `vl` elements.
    Vle32 { vd: VReg, rs1: XReg },
    /// `vse8.v vs3, (rs1)` — unit-stride 8-bit store of `vl` elements.
    Vse8 { vs3: VReg, rs1: XReg },
    /// `vse16.v vs3, (rs1)` — unit-stride 16-bit store of `vl` elements.
    Vse16 { vs3: VReg, rs1: XReg },
    /// `vse32.v vs3, (rs1)` — unit-stride 32-bit store of `vl` elements.
    Vse32 { vs3: VReg, rs1: XReg },

    // ---- vector integer arithmetic ----
    /// `vadd.vv vd, vs2, vs1`.
    VaddVv { vd: VReg, vs2: VReg, vs1: VReg },
    /// `vadd.vx vd, vs2, rs1`.
    VaddVx { vd: VReg, vs2: VReg, rs1: XReg },
    /// `vadd.vi vd, vs2, imm` (5-bit signed immediate).
    VaddVi { vd: VReg, vs2: VReg, imm: i8 },
    /// `vmul.vv vd, vs2, vs1`.
    VmulVv { vd: VReg, vs2: VReg, vs1: VReg },
    /// `vmul.vx vd, vs2, rs1`.
    VmulVx { vd: VReg, vs2: VReg, rs1: XReg },
    /// `vmacc.vx vd, rs1, vs2` — integer `vd[i] += rs1 * vs2[i]`.
    VmaccVx { vd: VReg, rs1: XReg, vs2: VReg },

    // ---- vector floating-point arithmetic ----
    /// `vfadd.vv vd, vs2, vs1`.
    VfaddVv { vd: VReg, vs2: VReg, vs1: VReg },
    /// `vfmul.vv vd, vs2, vs1`.
    VfmulVv { vd: VReg, vs2: VReg, vs1: VReg },
    /// `vfmacc.vf vd, fs1, vs2` — float `vd[i] += fs1 * vs2[i]`, the
    /// scalar-vector MAC of Algorithm 1/2 (paper line `C[i,:] += s0*B`).
    VfmaccVf { vd: VReg, fs1: FReg, vs2: VReg },
    /// `vfmacc.vv vd, vs1, vs2` — float `vd[i] += vs1[i] * vs2[i]`.
    VfmaccVv { vd: VReg, vs1: VReg, vs2: VReg },

    // ---- vector moves / permutation ----
    /// `vmv.v.v vd, vs1` — whole-register copy of the active elements.
    VmvVv { vd: VReg, vs1: VReg },
    /// `vmv.v.x vd, rs1` — broadcast scalar.
    VmvVx { vd: VReg, rs1: XReg },
    /// `vmv.x.s rd, vs2` — element 0 to scalar (sign-extended).
    VmvXs { rd: XReg, vs2: VReg },
    /// `vmv.s.x vd, rs1` — scalar to element 0.
    VmvSx { vd: VReg, rs1: XReg },
    /// `vfmv.f.s fd, vs2` — element 0 to fp scalar.
    VfmvFs { fd: FReg, vs2: VReg },
    /// `vslide1down.vx vd, vs2, rs1` — shift elements down one position,
    /// inserting `rs1` at the top; the paper's "vector slide to the right".
    Vslide1downVx { vd: VReg, vs2: VReg, rs1: XReg },
    /// `vslidedown.vi vd, vs2, imm` — shift down by an immediate count.
    VslidedownVi { vd: VReg, vs2: VReg, imm: u8 },

    // ---- custom ----
    /// `vindexmac.vx vd, vs2, rs` — the paper's contribution:
    /// `vd[i] += vs2[0] * vrf[rs[4:0]][i]` (float semantics, SEW=32).
    ///
    /// The 5 LSBs of scalar register `rs` select a vector register whose
    /// contents are multiplied by the *first element* of `vs2` and
    /// accumulated into `vd`. This is the indirect VRF read that replaces
    /// the per-nonzero vector load of Algorithm 2.
    VindexmacVx { vd: VReg, vs2: VReg, rs: XReg },
    /// `vindexmac.vvi vd, vs2, vs1, slot` — the second-generation
    /// indexed MAC (after arXiv 2501.10189):
    /// `vd[i] += vs2[slot] * vrf[vs1[slot][4:0]][i]` (float, SEW=32).
    ///
    /// Both the value and the column index are consumed *in place* from
    /// element `slot` of the metadata registers `vs2` (values) and `vs1`
    /// (register indices), so the steady-state inner loop needs neither
    /// the `vmv.x.s` cross-domain move nor the two `vslide1down`s of
    /// Algorithm 3. Under register grouping, `vd` and the indirectly
    /// selected source span the whole group while `vs2`/`vs1` stay
    /// single registers.
    VindexmacVvi {
        vd: VReg,
        vs2: VReg,
        vs1: VReg,
        slot: u8,
    },
}

impl Instruction {
    /// Micro-architectural class (see [`InstrClass`]).
    pub fn class(&self) -> InstrClass {
        use Instruction::*;
        match self {
            Li { .. }
            | Mv { .. }
            | Addi { .. }
            | Add { .. }
            | Sub { .. }
            | Mul { .. }
            | Slli { .. }
            | Srli { .. }
            | Nop => InstrClass::ScalarAlu,
            Lw { .. } | Lwu { .. } | Ld { .. } | Flw { .. } => InstrClass::ScalarLoad,
            Sw { .. } | Sd { .. } => InstrClass::ScalarStore,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Jal { .. } => {
                InstrClass::ControlFlow
            }
            Halt => InstrClass::System,
            Vsetvli { .. } => InstrClass::VConfig,
            Vle8 { .. } | Vle16 { .. } | Vle32 { .. } => InstrClass::VLoad,
            Vse8 { .. } | Vse16 { .. } | Vse32 { .. } => InstrClass::VStore,
            VaddVv { .. }
            | VaddVx { .. }
            | VaddVi { .. }
            | VmulVv { .. }
            | VmulVx { .. }
            | VfaddVv { .. }
            | VfmulVv { .. } => InstrClass::VArith,
            VmaccVx { .. } | VfmaccVf { .. } | VfmaccVv { .. } => InstrClass::VMac,
            VmvVv { .. } => InstrClass::VArith,
            VmvVx { .. } | VmvSx { .. } => InstrClass::VMvFromScalar,
            VmvXs { .. } | VfmvFs { .. } => InstrClass::VMvToScalar,
            Vslide1downVx { .. } | VslidedownVi { .. } => InstrClass::VSlide,
            VindexmacVx { .. } | VindexmacVvi { .. } => InstrClass::VIndexMac,
        }
    }

    /// Whether the instruction is dispatched to the vector engine.
    pub fn is_vector(&self) -> bool {
        self.class().is_vector()
    }

    /// Scalar integer source registers (up to two).
    pub fn x_srcs(&self) -> [Option<XReg>; 2] {
        use Instruction::*;
        match *self {
            Mv { rs, .. } => [Some(rs), None],
            Addi { rs1, .. } | Slli { rs1, .. } | Srli { rs1, .. } => [Some(rs1), None],
            Add { rs1, rs2, .. } | Sub { rs1, rs2, .. } | Mul { rs1, rs2, .. } => {
                [Some(rs1), Some(rs2)]
            }
            Lw { rs1, .. } | Lwu { rs1, .. } | Ld { rs1, .. } | Flw { rs1, .. } => {
                [Some(rs1), None]
            }
            Sw { rs2, rs1, .. } | Sd { rs2, rs1, .. } => [Some(rs1), Some(rs2)],
            Beq { rs1, rs2, .. }
            | Bne { rs1, rs2, .. }
            | Blt { rs1, rs2, .. }
            | Bge { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Vsetvli { rs1, .. } => [Some(rs1), None],
            Vle8 { rs1, .. }
            | Vle16 { rs1, .. }
            | Vle32 { rs1, .. }
            | Vse8 { rs1, .. }
            | Vse16 { rs1, .. }
            | Vse32 { rs1, .. } => [Some(rs1), None],
            VaddVx { rs1, .. }
            | VmulVx { rs1, .. }
            | VmaccVx { rs1, .. }
            | VmvVx { rs1, .. }
            | VmvSx { rs1, .. }
            | Vslide1downVx { rs1, .. } => [Some(rs1), None],
            VindexmacVx { rs, .. } => [Some(rs), None],
            _ => [None, None],
        }
    }

    /// Scalar integer destination register, if any.
    pub fn x_dst(&self) -> Option<XReg> {
        use Instruction::*;
        match *self {
            Li { rd, .. }
            | Mv { rd, .. }
            | Addi { rd, .. }
            | Add { rd, .. }
            | Sub { rd, .. }
            | Mul { rd, .. }
            | Slli { rd, .. }
            | Srli { rd, .. }
            | Lw { rd, .. }
            | Lwu { rd, .. }
            | Ld { rd, .. }
            | Jal { rd, .. }
            | Vsetvli { rd, .. }
            | VmvXs { rd, .. } => {
                if rd.is_zero() {
                    None
                } else {
                    Some(rd)
                }
            }
            _ => None,
        }
    }

    /// Floating-point source register, if any.
    pub fn f_src(&self) -> Option<FReg> {
        match *self {
            Instruction::VfmaccVf { fs1, .. } => Some(fs1),
            _ => None,
        }
    }

    /// Floating-point destination register, if any.
    pub fn f_dst(&self) -> Option<FReg> {
        match *self {
            Instruction::Flw { fd, .. } | Instruction::VfmvFs { fd, .. } => Some(fd),
            _ => None,
        }
    }

    /// Statically-known vector source registers (up to three; MAC-style
    /// instructions read their destination too). The *indirect* source of
    /// `vindexmac.vx` is dynamic and reported by the functional executor.
    pub fn v_srcs(&self) -> [Option<VReg>; 3] {
        use Instruction::*;
        match *self {
            Vse8 { vs3, .. } | Vse16 { vs3, .. } | Vse32 { vs3, .. } => [Some(vs3), None, None],
            VaddVv { vs2, vs1, .. }
            | VmulVv { vs2, vs1, .. }
            | VfaddVv { vs2, vs1, .. }
            | VfmulVv { vs2, vs1, .. } => [Some(vs2), Some(vs1), None],
            VaddVx { vs2, .. } | VaddVi { vs2, .. } | VmulVx { vs2, .. } => [Some(vs2), None, None],
            VmaccVx { vd, vs2, .. } => [Some(vs2), Some(vd), None],
            VfmaccVf { vd, vs2, .. } => [Some(vs2), Some(vd), None],
            VfmaccVv { vd, vs1, vs2 } => [Some(vs2), Some(vs1), Some(vd)],
            VmvVv { vs1, .. } => [Some(vs1), None, None],
            VmvXs { vs2, .. } | VfmvFs { vs2, .. } => [Some(vs2), None, None],
            Vslide1downVx { vs2, .. } | VslidedownVi { vs2, .. } => [Some(vs2), None, None],
            // vindexmac reads vs2[0] and accumulates into vd.
            VindexmacVx { vd, vs2, .. } => [Some(vs2), Some(vd), None],
            // vindexmac.vvi reads both metadata registers in place.
            VindexmacVvi { vd, vs2, vs1, .. } => [Some(vs2), Some(vs1), Some(vd)],
            _ => [None, None, None],
        }
    }

    /// Vector destination register, if any.
    pub fn v_dst(&self) -> Option<VReg> {
        use Instruction::*;
        match *self {
            Vle8 { vd, .. }
            | Vle16 { vd, .. }
            | Vle32 { vd, .. }
            | VaddVv { vd, .. }
            | VaddVx { vd, .. }
            | VaddVi { vd, .. }
            | VmulVv { vd, .. }
            | VmulVx { vd, .. }
            | VmaccVx { vd, .. }
            | VfaddVv { vd, .. }
            | VfmulVv { vd, .. }
            | VfmaccVf { vd, .. }
            | VfmaccVv { vd, .. }
            | VmvVv { vd, .. }
            | VmvVx { vd, .. }
            | VmvSx { vd, .. }
            | Vslide1downVx { vd, .. }
            | VslidedownVi { vd, .. }
            | VindexmacVx { vd, .. }
            | VindexmacVvi { vd, .. } => Some(vd),
            _ => None,
        }
    }

    /// Branch offset in instruction slots, if this is a branch/jump.
    pub fn branch_offset(&self) -> Option<i32> {
        use Instruction::*;
        match *self {
            Beq { offset, .. }
            | Bne { offset, .. }
            | Blt { offset, .. }
            | Bge { offset, .. }
            | Jal { offset, .. } => Some(offset),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Mv { rd, rs } => write!(f, "mv {rd}, {rs}"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Slli { rd, rs1, shamt } => write!(f, "slli {rd}, {rs1}, {shamt}"),
            Srli { rd, rs1, shamt } => write!(f, "srli {rd}, {rs1}, {shamt}"),
            Lw { rd, rs1, imm } => write!(f, "lw {rd}, {imm}({rs1})"),
            Lwu { rd, rs1, imm } => write!(f, "lwu {rd}, {imm}({rs1})"),
            Ld { rd, rs1, imm } => write!(f, "ld {rd}, {imm}({rs1})"),
            Sw { rs2, rs1, imm } => write!(f, "sw {rs2}, {imm}({rs1})"),
            Sd { rs2, rs1, imm } => write!(f, "sd {rs2}, {imm}({rs1})"),
            Beq { rs1, rs2, offset } => write!(f, "beq {rs1}, {rs2}, {offset}"),
            Bne { rs1, rs2, offset } => write!(f, "bne {rs1}, {rs2}, {offset}"),
            Blt { rs1, rs2, offset } => write!(f, "blt {rs1}, {rs2}, {offset}"),
            Bge { rs1, rs2, offset } => write!(f, "bge {rs1}, {rs2}, {offset}"),
            Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "ebreak"),
            Flw { fd, rs1, imm } => write!(f, "flw {fd}, {imm}({rs1})"),
            Vsetvli { rd, rs1, sew, lmul } => write!(f, "vsetvli {rd}, {rs1}, {sew},{lmul}"),
            Vle8 { vd, rs1 } => write!(f, "vle8.v {vd}, ({rs1})"),
            Vle16 { vd, rs1 } => write!(f, "vle16.v {vd}, ({rs1})"),
            Vle32 { vd, rs1 } => write!(f, "vle32.v {vd}, ({rs1})"),
            Vse8 { vs3, rs1 } => write!(f, "vse8.v {vs3}, ({rs1})"),
            Vse16 { vs3, rs1 } => write!(f, "vse16.v {vs3}, ({rs1})"),
            Vse32 { vs3, rs1 } => write!(f, "vse32.v {vs3}, ({rs1})"),
            VaddVv { vd, vs2, vs1 } => write!(f, "vadd.vv {vd}, {vs2}, {vs1}"),
            VaddVx { vd, vs2, rs1 } => write!(f, "vadd.vx {vd}, {vs2}, {rs1}"),
            VaddVi { vd, vs2, imm } => write!(f, "vadd.vi {vd}, {vs2}, {imm}"),
            VmulVv { vd, vs2, vs1 } => write!(f, "vmul.vv {vd}, {vs2}, {vs1}"),
            VmulVx { vd, vs2, rs1 } => write!(f, "vmul.vx {vd}, {vs2}, {rs1}"),
            VmaccVx { vd, rs1, vs2 } => write!(f, "vmacc.vx {vd}, {rs1}, {vs2}"),
            VfaddVv { vd, vs2, vs1 } => write!(f, "vfadd.vv {vd}, {vs2}, {vs1}"),
            VfmulVv { vd, vs2, vs1 } => write!(f, "vfmul.vv {vd}, {vs2}, {vs1}"),
            VfmaccVf { vd, fs1, vs2 } => write!(f, "vfmacc.vf {vd}, {fs1}, {vs2}"),
            VfmaccVv { vd, vs1, vs2 } => write!(f, "vfmacc.vv {vd}, {vs1}, {vs2}"),
            VmvVv { vd, vs1 } => write!(f, "vmv.v.v {vd}, {vs1}"),
            VmvVx { vd, rs1 } => write!(f, "vmv.v.x {vd}, {rs1}"),
            VmvXs { rd, vs2 } => write!(f, "vmv.x.s {rd}, {vs2}"),
            VmvSx { vd, rs1 } => write!(f, "vmv.s.x {vd}, {rs1}"),
            VfmvFs { fd, vs2 } => write!(f, "vfmv.f.s {fd}, {vs2}"),
            Vslide1downVx { vd, vs2, rs1 } => write!(f, "vslide1down.vx {vd}, {vs2}, {rs1}"),
            VslidedownVi { vd, vs2, imm } => write!(f, "vslidedown.vi {vd}, {vs2}, {imm}"),
            VindexmacVx { vd, vs2, rs } => write!(f, "vindexmac.vx {vd}, {vs2}, {rs}"),
            VindexmacVvi { vd, vs2, vs1, slot } => {
                write!(f, "vindexmac.vvi {vd}, {vs2}, {vs1}, {slot}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_is_exhaustive_and_in_order() {
        assert_eq!(InstrClass::COUNT, InstrClass::ALL.len());
        for (i, c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} out of place in InstrClass::ALL");
        }
        // Vector/memory routing partitions the table sensibly.
        assert_eq!(
            InstrClass::ALL.iter().filter(|c| c.is_vector()).count(),
            9,
            "vector classes"
        );
    }

    #[test]
    fn class_routing() {
        assert_eq!(Instruction::Nop.class(), InstrClass::ScalarAlu);
        assert_eq!(
            Instruction::Lw {
                rd: XReg::T0,
                rs1: XReg::A0,
                imm: 0
            }
            .class(),
            InstrClass::ScalarLoad
        );
        assert_eq!(
            Instruction::Vle32 {
                vd: VReg::V1,
                rs1: XReg::A0
            }
            .class(),
            InstrClass::VLoad
        );
        assert_eq!(
            Instruction::VindexmacVx {
                vd: VReg::V1,
                vs2: VReg::V2,
                rs: XReg::T0
            }
            .class(),
            InstrClass::VIndexMac
        );
        assert!(InstrClass::VIndexMac.is_vector());
        assert!(!InstrClass::ScalarAlu.is_vector());
        assert!(InstrClass::VLoad.is_memory());
        assert!(!InstrClass::VMac.is_memory());
    }

    #[test]
    fn x_dst_suppresses_zero_register() {
        let i = Instruction::Addi {
            rd: XReg::ZERO,
            rs1: XReg::T0,
            imm: 1,
        };
        assert_eq!(i.x_dst(), None);
        let i = Instruction::Addi {
            rd: XReg::T1,
            rs1: XReg::T0,
            imm: 1,
        };
        assert_eq!(i.x_dst(), Some(XReg::T1));
    }

    #[test]
    fn mac_reads_destination() {
        let i = Instruction::VfmaccVf {
            vd: VReg::V3,
            fs1: FReg::F0,
            vs2: VReg::V4,
        };
        let srcs = i.v_srcs();
        assert!(srcs.contains(&Some(VReg::V3)));
        assert!(srcs.contains(&Some(VReg::V4)));
        assert_eq!(i.v_dst(), Some(VReg::V3));
        assert_eq!(i.f_src(), Some(FReg::F0));
    }

    #[test]
    fn vindexmac_static_uses() {
        let i = Instruction::VindexmacVx {
            vd: VReg::V2,
            vs2: VReg::V5,
            rs: XReg::T2,
        };
        assert_eq!(i.x_srcs(), [Some(XReg::T2), None]);
        assert_eq!(i.v_dst(), Some(VReg::V2));
        let srcs = i.v_srcs();
        assert!(srcs.contains(&Some(VReg::V5)));
        assert!(srcs.contains(&Some(VReg::V2)));
    }

    #[test]
    fn vindexmac_vvi_static_uses() {
        let i = Instruction::VindexmacVvi {
            vd: VReg::V2,
            vs2: VReg::V5,
            vs1: VReg::new(9),
            slot: 3,
        };
        // No scalar operand at all: the index never leaves the VRF.
        assert_eq!(i.x_srcs(), [None, None]);
        assert_eq!(i.x_dst(), None);
        assert_eq!(i.v_dst(), Some(VReg::V2));
        assert_eq!(i.class(), InstrClass::VIndexMac);
        let srcs = i.v_srcs();
        assert!(srcs.contains(&Some(VReg::V5)));
        assert!(srcs.contains(&Some(VReg::new(9))));
        assert!(srcs.contains(&Some(VReg::V2)));
    }

    #[test]
    fn branch_offsets() {
        let b = Instruction::Bne {
            rs1: XReg::T0,
            rs2: XReg::ZERO,
            offset: -4,
        };
        assert_eq!(b.branch_offset(), Some(-4));
        assert_eq!(Instruction::Nop.branch_offset(), None);
    }

    #[test]
    fn display_smoke() {
        let cases: Vec<(Instruction, &str)> = vec![
            (
                Instruction::Li {
                    rd: XReg::T0,
                    imm: -7,
                },
                "li t0, -7",
            ),
            (
                Instruction::Vle32 {
                    vd: VReg::V8,
                    rs1: XReg::A1,
                },
                "vle32.v v8, (a1)",
            ),
            (
                Instruction::VindexmacVx {
                    vd: VReg::V1,
                    vs2: VReg::V4,
                    rs: XReg::T3,
                },
                "vindexmac.vx v1, v4, t3",
            ),
            (
                Instruction::Vslide1downVx {
                    vd: VReg::V4,
                    vs2: VReg::V4,
                    rs1: XReg::ZERO,
                },
                "vslide1down.vx v4, v4, zero",
            ),
            (
                Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::A0,
                    sew: Sew::E32,
                    lmul: Lmul::M1,
                },
                "vsetvli t0, a0, e32,m1",
            ),
            (
                Instruction::Vsetvli {
                    rd: XReg::T0,
                    rs1: XReg::A0,
                    sew: Sew::E32,
                    lmul: Lmul::M4,
                },
                "vsetvli t0, a0, e32,m4",
            ),
            (
                Instruction::VindexmacVvi {
                    vd: VReg::V1,
                    vs2: VReg::V4,
                    vs1: VReg::V8,
                    slot: 5,
                },
                "vindexmac.vvi v1, v4, v8, 5",
            ),
        ];
        for (i, want) in cases {
            assert_eq!(i.to_string(), want);
        }
    }

    #[test]
    fn narrow_memory_ops_share_the_load_store_classes() {
        let l8 = Instruction::Vle8 {
            vd: VReg::V1,
            rs1: XReg::A0,
        };
        let l16 = Instruction::Vle16 {
            vd: VReg::V1,
            rs1: XReg::A0,
        };
        let s8 = Instruction::Vse8 {
            vs3: VReg::V1,
            rs1: XReg::A0,
        };
        let s16 = Instruction::Vse16 {
            vs3: VReg::V1,
            rs1: XReg::A0,
        };
        assert_eq!(l8.class(), InstrClass::VLoad);
        assert_eq!(l16.class(), InstrClass::VLoad);
        assert_eq!(s8.class(), InstrClass::VStore);
        assert_eq!(s16.class(), InstrClass::VStore);
        assert_eq!(l8.v_dst(), Some(VReg::V1));
        assert_eq!(l8.x_srcs(), [Some(XReg::A0), None]);
        assert_eq!(s16.v_srcs(), [Some(VReg::V1), None, None]);
        assert_eq!(l8.to_string(), "vle8.v v1, (a0)");
        assert_eq!(l16.to_string(), "vle16.v v1, (a0)");
        assert_eq!(s8.to_string(), "vse8.v v1, (a0)");
        assert_eq!(s16.to_string(), "vse16.v v1, (a0)");
    }

    #[test]
    fn freg_display() {
        assert_eq!(FReg::F0.to_string(), "f0");
        assert_eq!(FReg::new(31).to_string(), "f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_rejects_32() {
        let _ = FReg::new(32);
    }
}
