//! Program container and the mini-assembler used by kernel generators.

use crate::encode::{encode, EncodeError};
use crate::instr::Instruction;
use crate::reg::XReg;
use std::collections::HashMap;
use std::fmt;

/// An opaque handle to a not-yet-resolved branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An executable program: a flat sequence of instructions, with branch
/// offsets expressed in instruction slots.
///
/// Programs are produced by [`ProgramBuilder`] and consumed directly by
/// the functional simulator (no encode/decode round trip on the hot
/// path). [`Program::encode`] lowers to machine words where possible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    instrs: Vec<Instruction>,
    /// Source-level comments keyed by instruction index (debugging aid).
    comments: HashMap<usize, String>,
}

impl Program {
    /// Number of (static) instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at slot `pc`.
    pub fn fetch(&self, pc: usize) -> Option<&Instruction> {
        self.instrs.get(pc)
    }

    /// All instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instrs
    }

    /// The comment attached at slot `pc`, if any.
    pub fn comment(&self, pc: usize) -> Option<&str> {
        self.comments.get(&pc).map(String::as_str)
    }

    /// Lowers the program to 32-bit machine words.
    ///
    /// # Errors
    ///
    /// Propagates [`EncodeError`] from the first non-encodable
    /// instruction (e.g. an `li` with a 64-bit constant).
    pub fn encode(&self) -> Result<Vec<u32>, EncodeError> {
        self.instrs.iter().map(encode).collect()
    }

    /// Counts instructions matching a predicate — handy in tests and
    /// reports ("how many vector loads does this kernel issue?").
    pub fn count<F: Fn(&Instruction) -> bool>(&self, pred: F) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Some(c) = self.comment(pc) {
                writeln!(f, "                    # {c}")?;
            }
            writeln!(f, "{pc:6}:  {i}")?;
        }
        Ok(())
    }
}

/// Incremental program builder with label resolution.
///
/// # Example
///
/// ```
/// use indexmac_isa::{Instruction, ProgramBuilder, XReg};
///
/// let mut b = ProgramBuilder::new();
/// b.li(XReg::T0, 3);
/// let top = b.bind_label();           // loop head
/// b.push(Instruction::Addi { rd: XReg::T0, rs1: XReg::T0, imm: -1 });
/// b.bne(XReg::T0, XReg::ZERO, top);   // backward branch
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instruction>,
    comments: HashMap<usize, String>,
    /// label -> bound slot (usize::MAX while unbound)
    labels: Vec<usize>,
    /// (slot of branch, label) fix-ups to patch at build time
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction count (the slot the next `push` will use).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instruction) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Attaches a comment to the *next* pushed instruction.
    pub fn comment(&mut self, text: impl Into<String>) -> &mut Self {
        self.comments.insert(self.instrs.len(), text.into());
        self
    }

    /// Creates a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(usize::MAX);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert_eq!(self.labels[label.0], usize::MAX, "label bound twice");
        self.labels[label.0] = self.instrs.len();
    }

    /// Creates a label bound to the current position.
    pub fn bind_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    // ---- convenience emitters used throughout the kernel builders ----

    /// `li rd, imm`.
    pub fn li(&mut self, rd: XReg, imm: i64) -> &mut Self {
        self.push(Instruction::Li { rd, imm })
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: XReg, rs1: XReg, imm: i32) -> &mut Self {
        self.push(Instruction::Addi { rd, rs1, imm })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.push(Instruction::Add { rd, rs1, rs2 })
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: XReg, rs: XReg) -> &mut Self {
        self.push(Instruction::Mv { rd, rs })
    }

    /// `bne rs1, rs2, label` (offset patched at build time).
    pub fn bne(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.push(Instruction::Bne {
            rs1,
            rs2,
            offset: 0,
        })
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.push(Instruction::Beq {
            rs1,
            rs2,
            offset: 0,
        })
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: XReg, rs2: XReg, target: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), target));
        self.push(Instruction::Blt {
            rs1,
            rs2,
            offset: 0,
        })
    }

    /// `ebreak` — terminate simulation.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instruction::Halt)
    }

    /// Finalises the program, resolving label fix-ups.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound (a builder bug in
    /// the caller, not a data-dependent condition).
    pub fn build(mut self) -> Program {
        for (slot, label) in &self.fixups {
            let bound = self.labels[label.0];
            assert_ne!(bound, usize::MAX, "branch references unbound label");
            let off = bound as i64 - *slot as i64;
            let patched = match self.instrs[*slot] {
                Instruction::Beq { rs1, rs2, .. } => Instruction::Beq {
                    rs1,
                    rs2,
                    offset: off as i32,
                },
                Instruction::Bne { rs1, rs2, .. } => Instruction::Bne {
                    rs1,
                    rs2,
                    offset: off as i32,
                },
                Instruction::Blt { rs1, rs2, .. } => Instruction::Blt {
                    rs1,
                    rs2,
                    offset: off as i32,
                },
                Instruction::Bge { rs1, rs2, .. } => Instruction::Bge {
                    rs1,
                    rs2,
                    offset: off as i32,
                },
                other => unreachable!("fixup on non-branch {other}"),
            };
            self.instrs[*slot] = patched;
        }
        Program {
            instrs: self.instrs,
            comments: self.comments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instruction;
    use crate::reg::VReg;

    #[test]
    fn builder_basic_flow() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 10).addi(XReg::T0, XReg::T0, -1).halt();
        let p = b.build();
        assert_eq!(p.len(), 3);
        assert_eq!(p.fetch(2), Some(&Instruction::Halt));
        assert_eq!(p.fetch(3), None);
        assert!(!p.is_empty());
    }

    #[test]
    fn backward_branch_resolution() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 3);
        let top = b.bind_label();
        b.addi(XReg::T0, XReg::T0, -1);
        b.bne(XReg::T0, XReg::ZERO, top);
        b.halt();
        let p = b.build();
        // Branch at slot 2 targets slot 1 -> offset -1.
        assert_eq!(
            p.fetch(2),
            Some(&Instruction::Bne {
                rs1: XReg::T0,
                rs2: XReg::ZERO,
                offset: -1
            })
        );
    }

    #[test]
    fn forward_branch_resolution() {
        let mut b = ProgramBuilder::new();
        let done = b.new_label();
        b.beq(XReg::T0, XReg::ZERO, done);
        b.li(XReg::T1, 42);
        b.bind(done);
        b.halt();
        let p = b.build();
        assert_eq!(
            p.fetch(0),
            Some(&Instruction::Beq {
                rs1: XReg::T0,
                rs2: XReg::ZERO,
                offset: 2
            })
        );
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bne(XReg::T0, XReg::ZERO, l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn comments_attach_to_next_instruction() {
        let mut b = ProgramBuilder::new();
        b.comment("preload B tile");
        b.push(Instruction::Vle32 {
            vd: VReg::V16,
            rs1: XReg::A0,
        });
        b.halt();
        let p = b.build();
        assert_eq!(p.comment(0), Some("preload B tile"));
        assert_eq!(p.comment(1), None);
        let listing = p.to_string();
        assert!(listing.contains("# preload B tile"));
        assert!(listing.contains("vle32.v v16, (a0)"));
    }

    #[test]
    fn count_helper() {
        let mut b = ProgramBuilder::new();
        b.push(Instruction::Vle32 {
            vd: VReg::V1,
            rs1: XReg::A0,
        });
        b.push(Instruction::Vle32 {
            vd: VReg::V2,
            rs1: XReg::A0,
        });
        b.halt();
        let p = b.build();
        assert_eq!(p.count(|i| matches!(i, Instruction::Vle32 { .. })), 2);
    }

    #[test]
    fn encode_whole_program() {
        let mut b = ProgramBuilder::new();
        b.li(XReg::T0, 5); // fits addi
        b.push(Instruction::VindexmacVx {
            vd: VReg::V1,
            vs2: VReg::V2,
            rs: XReg::T0,
        });
        b.halt();
        let words = b.build().encode().unwrap();
        assert_eq!(words.len(), 3);
    }
}
