//! Decoding 32-bit machine words back to [`Instruction`] values.
//!
//! Inverse of [`crate::encode()`]; used by the round-trip tests and by the
//! `custom_kernel` example to show what a toolchain would emit.

use crate::encode::{opcode, vcat, vfunct6};
use crate::instr::{FReg, Instruction};
use crate::reg::{VReg, XReg};
use crate::vtype::{Lmul, Sew};
use std::error::Error;
use std::fmt;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode is not part of the modelled subset.
    UnknownOpcode {
        /// The full instruction word.
        word: u32,
        /// The 7-bit major opcode.
        opcode: u32,
    },
    /// The opcode is known but the function fields are not supported.
    UnsupportedFunction {
        /// The full instruction word.
        word: u32,
        /// Short description of the unsupported field combination.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { word, opcode } => {
                write!(f, "unknown major opcode {opcode:#04x} in word {word:#010x}")
            }
            DecodeError::UnsupportedFunction { word, what } => {
                write!(f, "unsupported {what} in word {word:#010x}")
            }
        }
    }
}

impl Error for DecodeError {}

fn xr(word: u32, lo: u32) -> XReg {
    XReg::new(((word >> lo) & 0x1F) as u8)
}

fn vr(word: u32, lo: u32) -> VReg {
    VReg::new(((word >> lo) & 0x1F) as u8)
}

fn i_imm(word: u32) -> i32 {
    (word as i32) >> 20
}

fn s_imm(word: u32) -> i32 {
    let hi = (word as i32) >> 25; // sign-extended imm[11:5]
    let lo = ((word >> 7) & 0x1F) as i32;
    (hi << 5) | lo
}

fn b_offset_slots(word: u32) -> i32 {
    let imm12 = ((word >> 31) & 1) as i32;
    let imm11 = ((word >> 7) & 1) as i32;
    let imm10_5 = ((word >> 25) & 0x3F) as i32;
    let imm4_1 = ((word >> 8) & 0xF) as i32;
    let bytes = (imm12 << 12 | imm11 << 11 | imm10_5 << 5 | imm4_1 << 1) - (imm12 << 13);
    bytes / 4
}

fn j_offset_slots(word: u32) -> i32 {
    let imm20 = ((word >> 31) & 1) as i32;
    let imm19_12 = ((word >> 12) & 0xFF) as i32;
    let imm11 = ((word >> 20) & 1) as i32;
    let imm10_1 = ((word >> 21) & 0x3FF) as i32;
    let bytes = (imm20 << 20 | imm19_12 << 12 | imm11 << 11 | imm10_1 << 1) - (imm20 << 21);
    bytes / 4
}

/// Decodes a 32-bit machine word.
///
/// Canonical pseudo-forms are recognised: `addi x0, x0, 0` decodes to
/// [`Instruction::Nop`] and `addi rd, rs, 0` (with `rd != x0`, `rs != x0`)
/// to [`Instruction::Mv`].
///
/// # Errors
///
/// Returns [`DecodeError`] for opcodes or function fields outside the
/// modelled subset.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let op = word & 0x7F;
    let f3 = (word >> 12) & 0x7;
    match op {
        opcode::OP_IMM => {
            let rd = xr(word, 7);
            let rs1 = xr(word, 15);
            match f3 {
                0b000 => {
                    let imm = i_imm(word);
                    if imm == 0 && rd.is_zero() && rs1.is_zero() {
                        Ok(Instruction::Nop)
                    } else if imm == 0 && !rd.is_zero() && !rs1.is_zero() {
                        Ok(Instruction::Mv { rd, rs: rs1 })
                    } else if rs1.is_zero() {
                        Ok(Instruction::Li {
                            rd,
                            imm: imm as i64,
                        })
                    } else {
                        Ok(Instruction::Addi { rd, rs1, imm })
                    }
                }
                0b001 => Ok(Instruction::Slli {
                    rd,
                    rs1,
                    shamt: ((word >> 20) & 0x3F) as u8,
                }),
                0b101 => Ok(Instruction::Srli {
                    rd,
                    rs1,
                    shamt: ((word >> 20) & 0x3F) as u8,
                }),
                _ => Err(DecodeError::UnsupportedFunction {
                    word,
                    what: "OP-IMM funct3",
                }),
            }
        }
        opcode::OP => {
            let rd = xr(word, 7);
            let rs1 = xr(word, 15);
            let rs2 = xr(word, 20);
            let f7 = word >> 25;
            match (f7, f3) {
                (0, 0b000) => Ok(Instruction::Add { rd, rs1, rs2 }),
                (0b0100000, 0b000) => Ok(Instruction::Sub { rd, rs1, rs2 }),
                (0b0000001, 0b000) => Ok(Instruction::Mul { rd, rs1, rs2 }),
                _ => Err(DecodeError::UnsupportedFunction {
                    word,
                    what: "OP funct7/funct3",
                }),
            }
        }
        opcode::LOAD => {
            let rd = xr(word, 7);
            let rs1 = xr(word, 15);
            let imm = i_imm(word);
            match f3 {
                0b010 => Ok(Instruction::Lw { rd, rs1, imm }),
                0b110 => Ok(Instruction::Lwu { rd, rs1, imm }),
                0b011 => Ok(Instruction::Ld { rd, rs1, imm }),
                _ => Err(DecodeError::UnsupportedFunction {
                    word,
                    what: "LOAD width",
                }),
            }
        }
        opcode::STORE => {
            let rs1 = xr(word, 15);
            let rs2 = xr(word, 20);
            let imm = s_imm(word);
            match f3 {
                0b010 => Ok(Instruction::Sw { rs2, rs1, imm }),
                0b011 => Ok(Instruction::Sd { rs2, rs1, imm }),
                _ => Err(DecodeError::UnsupportedFunction {
                    word,
                    what: "STORE width",
                }),
            }
        }
        opcode::BRANCH => {
            let rs1 = xr(word, 15);
            let rs2 = xr(word, 20);
            let offset = b_offset_slots(word);
            match f3 {
                0b000 => Ok(Instruction::Beq { rs1, rs2, offset }),
                0b001 => Ok(Instruction::Bne { rs1, rs2, offset }),
                0b100 => Ok(Instruction::Blt { rs1, rs2, offset }),
                0b101 => Ok(Instruction::Bge { rs1, rs2, offset }),
                _ => Err(DecodeError::UnsupportedFunction {
                    word,
                    what: "BRANCH funct3",
                }),
            }
        }
        opcode::JAL => Ok(Instruction::Jal {
            rd: xr(word, 7),
            offset: j_offset_slots(word),
        }),
        opcode::SYSTEM => {
            if word == 0x0010_0073 {
                Ok(Instruction::Halt)
            } else {
                Err(DecodeError::UnsupportedFunction {
                    word,
                    what: "SYSTEM function",
                })
            }
        }
        opcode::LOAD_FP => match f3 {
            0b010 => Ok(Instruction::Flw {
                fd: FReg::new(((word >> 7) & 0x1F) as u8),
                rs1: xr(word, 15),
                imm: i_imm(word),
            }),
            0b000 | 0b101 | 0b110 => {
                // Unit-stride vector load: require mop=00, lumop=0, nf=0.
                if (word >> 26) & 0x3F != 0 || (word >> 20) & 0x1F != 0 {
                    return Err(DecodeError::UnsupportedFunction {
                        word,
                        what: "vector load mode",
                    });
                }
                let (vd, rs1) = (vr(word, 7), xr(word, 15));
                Ok(match f3 {
                    0b000 => Instruction::Vle8 { vd, rs1 },
                    0b101 => Instruction::Vle16 { vd, rs1 },
                    _ => Instruction::Vle32 { vd, rs1 },
                })
            }
            _ => Err(DecodeError::UnsupportedFunction {
                word,
                what: "LOAD-FP width",
            }),
        },
        opcode::STORE_FP => match f3 {
            0b000 | 0b101 | 0b110 => {
                // Unit-stride vector store: require mop=00, sumop=0,
                // nf=0, like the load path above.
                if (word >> 26) & 0x3F != 0 || (word >> 20) & 0x1F != 0 {
                    return Err(DecodeError::UnsupportedFunction {
                        word,
                        what: "vector store mode",
                    });
                }
                let (vs3, rs1) = (vr(word, 7), xr(word, 15));
                Ok(match f3 {
                    0b000 => Instruction::Vse8 { vs3, rs1 },
                    0b101 => Instruction::Vse16 { vs3, rs1 },
                    _ => Instruction::Vse32 { vs3, rs1 },
                })
            }
            _ => Err(DecodeError::UnsupportedFunction {
                word,
                what: "STORE-FP width",
            }),
        },
        opcode::OP_V => decode_opv(word, f3),
        _ => Err(DecodeError::UnknownOpcode { word, opcode: op }),
    }
}

fn decode_opv(word: u32, f3: u32) -> Result<Instruction, DecodeError> {
    if f3 == vcat::OPCFG {
        if word >> 31 != 0 {
            return Err(DecodeError::UnsupportedFunction {
                word,
                what: "vsetvl form",
            });
        }
        let vtype = (word >> 20) & 0x7FF;
        let sew = Sew::from_encoding((vtype >> 3) & 0x7)
            .ok_or(DecodeError::UnsupportedFunction { word, what: "vsew" })?;
        let lmul = Lmul::from_encoding(vtype & 0x7).ok_or(DecodeError::UnsupportedFunction {
            word,
            what: "vlmul",
        })?;
        return Ok(Instruction::Vsetvli {
            rd: xr(word, 7),
            rs1: xr(word, 15),
            sew,
            lmul,
        });
    }
    let funct6 = word >> 26;
    let vd = vr(word, 7);
    let vs2 = vr(word, 20);
    let mid = (word >> 15) & 0x1F;
    // The custom vindexmac.vvi block occupies funct6 = 0b11xxxx under
    // OPMVV, with slot[3:0] in funct6[3:0] and slot[4] in the vm bit.
    if f3 == vcat::OPMVV && funct6 & 0b110000 == vfunct6::VINDEXMAC_VVI_BASE {
        let vm = (word >> 25) & 1;
        let slot = ((vm << 4) | (funct6 & 0xF)) as u8;
        return Ok(Instruction::VindexmacVvi {
            vd,
            vs2,
            vs1: VReg::new(mid as u8),
            slot,
        });
    }
    match (funct6, f3) {
        (vfunct6::VADD, vcat::OPIVV) => Ok(Instruction::VaddVv {
            vd,
            vs2,
            vs1: VReg::new(mid as u8),
        }),
        (vfunct6::VADD, vcat::OPIVX) => Ok(Instruction::VaddVx {
            vd,
            vs2,
            rs1: XReg::new(mid as u8),
        }),
        (vfunct6::VADD, vcat::OPIVI) => {
            // Sign-extend the 5-bit immediate.
            let imm = ((mid as i32) << 27 >> 27) as i8;
            Ok(Instruction::VaddVi { vd, vs2, imm })
        }
        (vfunct6::VADD, vcat::OPFVV) => Ok(Instruction::VfaddVv {
            vd,
            vs2,
            vs1: VReg::new(mid as u8),
        }),
        (vfunct6::VMUL, vcat::OPMVV) => Ok(Instruction::VmulVv {
            vd,
            vs2,
            vs1: VReg::new(mid as u8),
        }),
        (vfunct6::VMUL, vcat::OPMVX) => Ok(Instruction::VmulVx {
            vd,
            vs2,
            rs1: XReg::new(mid as u8),
        }),
        (vfunct6::VMACC, vcat::OPMVX) => Ok(Instruction::VmaccVx {
            vd,
            rs1: XReg::new(mid as u8),
            vs2,
        }),
        (vfunct6::VFMUL, vcat::OPFVV) => Ok(Instruction::VfmulVv {
            vd,
            vs2,
            vs1: VReg::new(mid as u8),
        }),
        (vfunct6::VFMACC, vcat::OPFVF) => Ok(Instruction::VfmaccVf {
            vd,
            fs1: FReg::new(mid as u8),
            vs2,
        }),
        (vfunct6::VFMACC, vcat::OPFVV) => Ok(Instruction::VfmaccVv {
            vd,
            vs1: VReg::new(mid as u8),
            vs2,
        }),
        (vfunct6::VMV_V, vcat::OPIVV) => Ok(Instruction::VmvVv {
            vd,
            vs1: VReg::new(mid as u8),
        }),
        (vfunct6::VMV_V, vcat::OPIVX) => Ok(Instruction::VmvVx {
            vd,
            rs1: XReg::new(mid as u8),
        }),
        (vfunct6::VMV_S, vcat::OPMVV) => Ok(Instruction::VmvXs {
            rd: XReg::new(vd.index()),
            vs2,
        }),
        (vfunct6::VMV_S, vcat::OPMVX) => Ok(Instruction::VmvSx {
            vd,
            rs1: XReg::new(mid as u8),
        }),
        (vfunct6::VMV_S, vcat::OPFVV) => Ok(Instruction::VfmvFs {
            fd: FReg::new(vd.index()),
            vs2,
        }),
        (vfunct6::VSLIDEDOWN, vcat::OPMVX) => Ok(Instruction::Vslide1downVx {
            vd,
            vs2,
            rs1: XReg::new(mid as u8),
        }),
        (vfunct6::VSLIDEDOWN, vcat::OPIVI) => Ok(Instruction::VslidedownVi {
            vd,
            vs2,
            imm: mid as u8,
        }),
        (vfunct6::VINDEXMAC, vcat::OPMVX) => Ok(Instruction::VindexmacVx {
            vd,
            vs2,
            rs: XReg::new(mid as u8),
        }),
        _ => Err(DecodeError::UnsupportedFunction {
            word,
            what: "OP-V funct6/category",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(decode(0x0000_0013).unwrap(), Instruction::Nop);
        assert_eq!(decode(0x0010_0073).unwrap(), Instruction::Halt);
        assert_eq!(
            decode(0x0050_0293).unwrap(),
            Instruction::Li {
                rd: XReg::T0,
                imm: 5
            }
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            decode(0xFFFF_FFFF),
            Err(DecodeError::UnknownOpcode { .. })
        ));
        assert!(matches!(
            decode(0x0000_0073),
            Err(DecodeError::UnsupportedFunction { .. })
        ));
    }

    #[test]
    fn vindexmac_roundtrip() {
        let i = Instruction::VindexmacVx {
            vd: VReg::new(7),
            vs2: VReg::new(9),
            rs: XReg::T4,
        };
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn vindexmac_vvi_roundtrip_all_slots() {
        for slot in 0..32u8 {
            let i = Instruction::VindexmacVvi {
                vd: VReg::new(3),
                vs2: VReg::new(6),
                vs1: VReg::new(11),
                slot,
            };
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i, "slot {slot}");
        }
    }

    #[test]
    fn narrow_vector_memory_roundtrip() {
        for i in [
            Instruction::Vle8 {
                vd: VReg::new(5),
                rs1: XReg::A1,
            },
            Instruction::Vle16 {
                vd: VReg::new(6),
                rs1: XReg::A2,
            },
            Instruction::Vle32 {
                vd: VReg::new(7),
                rs1: XReg::A3,
            },
            Instruction::Vse8 {
                vs3: VReg::new(8),
                rs1: XReg::A1,
            },
            Instruction::Vse16 {
                vs3: VReg::new(9),
                rs1: XReg::A2,
            },
            Instruction::Vse32 {
                vs3: VReg::new(10),
                rs1: XReg::A3,
            },
        ] {
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i, "{i}");
        }
    }

    #[test]
    fn vle8_does_not_shadow_flw() {
        // flw sits at width 010; the vector widths are 000/101/110.
        let f = Instruction::Flw {
            fd: crate::instr::FReg::F1,
            rs1: XReg::A0,
            imm: 8,
        };
        assert_eq!(decode(encode(&f).unwrap()).unwrap(), f);
    }

    #[test]
    fn vsetvli_lmul_roundtrip() {
        for lmul in Lmul::ALL {
            let i = Instruction::Vsetvli {
                rd: XReg::T0,
                rs1: XReg::A0,
                sew: Sew::E32,
                lmul,
            };
            assert_eq!(decode(encode(&i).unwrap()).unwrap(), i, "{lmul}");
        }
    }

    #[test]
    fn vvi_block_does_not_shadow_existing_opmvv_encodings() {
        // vmul.vv and vmv.x.s live under OPMVV with funct6 outside the
        // 0b11xxxx block; they must still decode to themselves.
        let m = Instruction::VmulVv {
            vd: VReg::V1,
            vs2: VReg::V2,
            vs1: VReg::V3,
        };
        assert_eq!(decode(encode(&m).unwrap()).unwrap(), m);
        let x = Instruction::VmvXs {
            rd: XReg::T0,
            vs2: VReg::V3,
        };
        assert_eq!(decode(encode(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn negative_branch_roundtrip() {
        for off in [-100, -2, -1, 1, 2, 100] {
            let i = Instruction::Bne {
                rs1: XReg::T0,
                rs2: XReg::T1,
                offset: off,
            };
            let w = encode(&i).unwrap();
            assert_eq!(decode(w).unwrap(), i, "offset {off}");
        }
    }

    #[test]
    fn negative_store_offset_roundtrip() {
        let i = Instruction::Sw {
            rs2: XReg::A0,
            rs1: XReg::SP,
            imm: -64,
        };
        assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn vaddvi_sign_extension() {
        let i = Instruction::VaddVi {
            vd: VReg::V1,
            vs2: VReg::V2,
            imm: -5,
        };
        assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn jal_roundtrip() {
        for off in [-1000, -1, 1, 1000] {
            let i = Instruction::Jal {
                rd: XReg::RA,
                offset: off,
            };
            assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
        }
    }
}
