//! RISC-V instruction-set model for the IndexMAC reproduction.
//!
//! This crate defines the subset of RV64 + the RVV vector extension that
//! the simulated decoupled vector processor executes, including the
//! paper's custom [`vindexmac.vx`](Instruction::VindexmacVx) instruction
//! and its second-generation successor
//! [`vindexmac.vvi`](Instruction::VindexmacVvi) (after arXiv 2501.10189),
//! whose index operand never leaves the vector register file:
//!
//! ```text
//! vindexmac.vx  vd, vs2, rs         # vd[i] += vs2[0]    * vrf[rs[4:0]][i]
//! vindexmac.vvi vd, vs2, vs1, slot  # vd[i] += vs2[slot] * vrf[vs1[slot][4:0]][i]
//! ```
//!
//! Contents:
//!
//! * [`reg`] — scalar ([`XReg`]) and vector ([`VReg`]) register newtypes.
//! * [`vtype`] — `vtype` CSR modelling ([`Sew`], [`VType`], `vl` rules).
//! * [`instr`] — the [`Instruction`] enum with assembly-syntax `Display`.
//! * [`mod@encode`] / [`mod@decode`] — 32-bit RISC-V machine-code round-trip,
//!   including a concrete OP-V encoding for `vindexmac.vx`.
//! * [`program`] — [`Program`] container and the [`ProgramBuilder`]
//!   mini-assembler (labels, loop helpers) used by the kernel generators.
//!
//! # Example
//!
//! ```
//! use indexmac_isa::{Instruction, ProgramBuilder, VReg, XReg};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(XReg::T0, 0x1000);
//! b.push(Instruction::Vle32 { vd: VReg::V1, rs1: XReg::T0 });
//! b.push(Instruction::VindexmacVx { vd: VReg::V2, vs2: VReg::V1, rs: XReg::T0 });
//! let prog = b.build();
//! assert_eq!(prog.len(), 3);
//! assert!(prog.to_string().contains("vindexmac.vx"));
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod instr;
pub mod program;
pub mod reg;
pub mod vtype;

pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use instr::{InstrClass, Instruction};
pub use program::{Label, Program, ProgramBuilder};
pub use reg::{VReg, XReg};
pub use vtype::{Lmul, Sew, VType};
