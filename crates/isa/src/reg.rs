//! Scalar and vector register newtypes.

use std::fmt;

/// A scalar (integer) register `x0`–`x31`.
///
/// `x0` is hard-wired to zero, as in RISC-V. ABI aliases are provided as
/// associated constants for readable generated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XReg(u8);

impl XReg {
    /// Hard-wired zero register (`x0`).
    pub const ZERO: XReg = XReg(0);
    /// Return address (`x1`).
    pub const RA: XReg = XReg(1);
    /// Stack pointer (`x2`).
    pub const SP: XReg = XReg(2);
    /// Temporaries `t0`–`t6` (`x5`–`x7`, `x28`–`x31`).
    pub const T0: XReg = XReg(5);
    /// `t1`.
    pub const T1: XReg = XReg(6);
    /// `t2`.
    pub const T2: XReg = XReg(7);
    /// `t3`.
    pub const T3: XReg = XReg(28);
    /// `t4`.
    pub const T4: XReg = XReg(29);
    /// `t5`.
    pub const T5: XReg = XReg(30);
    /// `t6`.
    pub const T6: XReg = XReg(31);
    /// Argument/saved registers `a0`–`a7` (`x10`–`x17`).
    pub const A0: XReg = XReg(10);
    /// `a1`.
    pub const A1: XReg = XReg(11);
    /// `a2`.
    pub const A2: XReg = XReg(12);
    /// `a3`.
    pub const A3: XReg = XReg(13);
    /// `a4`.
    pub const A4: XReg = XReg(14);
    /// `a5`.
    pub const A5: XReg = XReg(15);
    /// `a6`.
    pub const A6: XReg = XReg(16);
    /// `a7`.
    pub const A7: XReg = XReg(17);
    /// Saved registers `s2`-`s11` (`x18`-`x27`) — used by kernel builders
    /// as long-lived pointers.
    pub const S2: XReg = XReg(18);
    /// `s3`.
    pub const S3: XReg = XReg(19);
    /// `s4`.
    pub const S4: XReg = XReg(20);
    /// `s5`.
    pub const S5: XReg = XReg(21);
    /// `s6`.
    pub const S6: XReg = XReg(22);
    /// `s7`.
    pub const S7: XReg = XReg(23);
    /// `s8`.
    pub const S8: XReg = XReg(24);
    /// `s9`.
    pub const S9: XReg = XReg(25);
    /// `s10`.
    pub const S10: XReg = XReg(26);
    /// `s11`.
    pub const S11: XReg = XReg(27);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "scalar register index {index} out of range");
        XReg(index)
    }

    /// The register index, `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for XReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // ABI names make the generated assembly far easier to read.
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        f.write_str(NAMES[self.0 as usize])
    }
}

/// A vector register `v0`–`v31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(u8);

impl VReg {
    /// `v0` (also the mask register in full RVV; unmasked ops only here).
    pub const V0: VReg = VReg(0);
    /// `v1`.
    pub const V1: VReg = VReg(1);
    /// `v2`.
    pub const V2: VReg = VReg(2);
    /// `v3`.
    pub const V3: VReg = VReg(3);
    /// `v4`.
    pub const V4: VReg = VReg(4);
    /// `v5`.
    pub const V5: VReg = VReg(5);
    /// `v6`.
    pub const V6: VReg = VReg(6);
    /// `v7`.
    pub const V7: VReg = VReg(7);
    /// `v8`.
    pub const V8: VReg = VReg(8);
    /// `v16` — first register of the pre-loaded B tile in the paper's
    /// Algorithm 3 layout used by the kernel generators.
    pub const V16: VReg = VReg(16);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "vector register index {index} out of range");
        VReg(index)
    }

    /// The register index, `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xreg_abi_names() {
        assert_eq!(XReg::ZERO.to_string(), "zero");
        assert_eq!(XReg::T0.to_string(), "t0");
        assert_eq!(XReg::T3.to_string(), "t3");
        assert_eq!(XReg::A0.to_string(), "a0");
        assert_eq!(XReg::S2.to_string(), "s2");
        assert_eq!(XReg::new(31).to_string(), "t6");
    }

    #[test]
    fn xreg_index_roundtrip() {
        for i in 0..32 {
            assert_eq!(XReg::new(i).index(), i);
        }
        assert!(XReg::ZERO.is_zero());
        assert!(!XReg::T0.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn xreg_rejects_32() {
        let _ = XReg::new(32);
    }

    #[test]
    fn vreg_display_and_index() {
        assert_eq!(VReg::new(0).to_string(), "v0");
        assert_eq!(VReg::new(31).to_string(), "v31");
        assert_eq!(VReg::V16.index(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vreg_rejects_32() {
        let _ = VReg::new(32);
    }
}
