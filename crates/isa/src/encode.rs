//! Binary (machine-code) encoding of the modelled instruction subset.
//!
//! Scalar instructions follow the RV64IM base encodings; vector
//! instructions follow the RVV 1.0 layout (major opcode OP-V = `0x57`,
//! `funct6 | vm | vs2 | vs1/rs1/imm | funct3 | vd`). The custom
//! `vindexmac.vx` occupies `funct6 = 0b011011` under OPMVX — a slot with
//! no `.vx` form in RVV 1.0 (the OPMVV encodings in that neighbourhood
//! are mask-register operations, which have no scalar-operand variants) —
//! mirroring how the paper added the instruction to the RISC-V GNU
//! toolchain without perturbing existing encodings.
//!
//! The functional simulator executes [`Instruction`] values directly;
//! encoding exists to demonstrate toolchain-level integration and is
//! exercised by round-trip tests against [`crate::decode()`].

use crate::instr::Instruction;
use crate::reg::{VReg, XReg};
use std::error::Error;
use std::fmt;

/// Major opcodes used by the subset.
pub mod opcode {
    /// LOAD (scalar integer loads).
    pub const LOAD: u32 = 0x03;
    /// LOAD-FP (scalar `flw` and vector unit-stride loads).
    pub const LOAD_FP: u32 = 0x07;
    /// OP-IMM.
    pub const OP_IMM: u32 = 0x13;
    /// STORE.
    pub const STORE: u32 = 0x23;
    /// STORE-FP (vector unit-stride stores).
    pub const STORE_FP: u32 = 0x27;
    /// OP (register-register integer).
    pub const OP: u32 = 0x33;
    /// BRANCH.
    pub const BRANCH: u32 = 0x63;
    /// JAL.
    pub const JAL: u32 = 0x6F;
    /// SYSTEM (`ebreak`).
    pub const SYSTEM: u32 = 0x73;
    /// OP-V (all vector arithmetic/config).
    pub const OP_V: u32 = 0x57;
}

/// `funct3` values for OP-V instruction categories.
pub mod vcat {
    /// Vector-vector integer.
    pub const OPIVV: u32 = 0b000;
    /// Vector-vector float.
    pub const OPFVV: u32 = 0b001;
    /// Vector-vector integer (multiply class).
    pub const OPMVV: u32 = 0b010;
    /// Vector-immediate integer.
    pub const OPIVI: u32 = 0b011;
    /// Vector-scalar integer.
    pub const OPIVX: u32 = 0b100;
    /// Vector-scalar float.
    pub const OPFVF: u32 = 0b101;
    /// Vector-scalar integer (multiply class) — also `vindexmac.vx`.
    pub const OPMVX: u32 = 0b110;
    /// Configuration (`vsetvli`).
    pub const OPCFG: u32 = 0b111;
}

/// `funct6` assignments (RVV 1.0 where standard, custom where noted).
pub mod vfunct6 {
    /// `vadd`.
    pub const VADD: u32 = 0b000000;
    /// `vfadd` (OPFVV/OPFVF space).
    pub const VFADD: u32 = 0b000000;
    /// `vslidedown` / `vslide1down`.
    pub const VSLIDEDOWN: u32 = 0b001111;
    /// `vmv.x.s` / `vmv.s.x` / `vfmv.f.s` unary-move space.
    pub const VMV_S: u32 = 0b010000;
    /// `vmv.v.*` (vmerge/vmv with vm=1).
    pub const VMV_V: u32 = 0b010111;
    /// **Custom**: `vindexmac.vx` (OPMVX space, unused by RVV 1.0).
    pub const VINDEXMAC: u32 = 0b011011;
    /// **Custom**: base of the 16-entry `vindexmac.vvi` block (OPMVV
    /// space; `funct6[3:0]` carry `slot[3:0]` and the `vm` bit carries
    /// `slot[4]` — the instruction is always unmasked, so the bit is
    /// free). The modelled subset uses none of the RVV 1.0 widening
    /// encodings that live at `0b11xxxx` under OPMVV.
    pub const VINDEXMAC_VVI_BASE: u32 = 0b110000;
    /// `vfmul` (OPFVV/OPFVF space).
    pub const VFMUL: u32 = 0b100100;
    /// `vmul` (OPMVV/OPMVX space).
    pub const VMUL: u32 = 0b100101;
    /// `vfmacc` (OPFVV/OPFVF space).
    pub const VFMACC: u32 = 0b101100;
    /// `vmacc` (OPMVV/OPMVX space).
    pub const VMACC: u32 = 0b101101;
}

/// Errors from [`encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Pseudo-instructions with no single machine encoding (`li` with a
    /// constant wider than 12 bits).
    Pseudo {
        /// Assembly form of the instruction.
        asm: String,
    },
    /// An immediate does not fit its encoding field.
    ImmediateRange {
        /// Assembly form of the instruction.
        asm: String,
        /// Number of bits available.
        bits: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Pseudo { asm } => {
                write!(
                    f,
                    "pseudo-instruction `{asm}` has no single machine encoding"
                )
            }
            EncodeError::ImmediateRange { asm, bits } => {
                write!(f, "immediate of `{asm}` does not fit in {bits} bits")
            }
        }
    }
}

impl Error for EncodeError {}

fn fits_signed(v: i64, bits: u32) -> bool {
    let min = -(1_i64 << (bits - 1));
    let max = (1_i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

fn r_type(f7: u32, rs2: XReg, rs1: XReg, f3: u32, rd: XReg, op: u32) -> u32 {
    (f7 << 25)
        | ((rs2.index() as u32) << 20)
        | ((rs1.index() as u32) << 15)
        | (f3 << 12)
        | ((rd.index() as u32) << 7)
        | op
}

fn i_type(imm: i32, rs1: XReg, f3: u32, rd: XReg, op: u32) -> u32 {
    (((imm as u32) & 0xFFF) << 20)
        | ((rs1.index() as u32) << 15)
        | (f3 << 12)
        | ((rd.index() as u32) << 7)
        | op
}

fn s_type(imm: i32, rs2: XReg, rs1: XReg, f3: u32, op: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7F) << 25)
        | ((rs2.index() as u32) << 20)
        | ((rs1.index() as u32) << 15)
        | (f3 << 12)
        | ((imm & 0x1F) << 7)
        | op
}

fn b_type(byte_off: i32, rs2: XReg, rs1: XReg, f3: u32, op: u32) -> u32 {
    let imm = byte_off as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | ((rs2.index() as u32) << 20)
        | ((rs1.index() as u32) << 15)
        | (f3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | op
}

fn j_type(byte_off: i32, rd: XReg, op: u32) -> u32 {
    let imm = byte_off as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | ((rd.index() as u32) << 7)
        | op
}

/// Unit-stride vector memory layout (vm=1, mop=0, nf=0).
fn v_unit_mem(rs1: XReg, width: u32, vreg: VReg, op: u32) -> u32 {
    (1 << 25) | ((rs1.index() as u32) << 15) | (width << 12) | ((vreg.index() as u32) << 7) | op
}

/// OP-V arithmetic layout (vm is always 1: the kernels are unmasked).
fn v_arith(funct6: u32, vs2: u32, mid: u32, f3: u32, vd: u32) -> u32 {
    (funct6 << 26) | (1 << 25) | (vs2 << 20) | (mid << 15) | (f3 << 12) | (vd << 7) | opcode::OP_V
}

fn vx(funct6: u32, vs2: VReg, rs1: XReg, f3: u32, vd: VReg) -> u32 {
    v_arith(
        funct6,
        vs2.index() as u32,
        rs1.index() as u32,
        f3,
        vd.index() as u32,
    )
}

fn vv(funct6: u32, vs2: VReg, vs1: VReg, f3: u32, vd: VReg) -> u32 {
    v_arith(
        funct6,
        vs2.index() as u32,
        vs1.index() as u32,
        f3,
        vd.index() as u32,
    )
}

/// Encodes one instruction to its 32-bit machine word.
///
/// # Errors
///
/// Returns [`EncodeError::Pseudo`] for `li`/`mv`-style pseudo forms whose
/// constant does not fit a single `addi`, and
/// [`EncodeError::ImmediateRange`] when an offset exceeds its field.
pub fn encode(instr: &Instruction) -> Result<u32, EncodeError> {
    use Instruction::*;
    let asm = || instr.to_string();
    Ok(match *instr {
        Li { rd, imm } => {
            if fits_signed(imm, 12) {
                i_type(imm as i32, XReg::ZERO, 0b000, rd, opcode::OP_IMM)
            } else {
                return Err(EncodeError::Pseudo { asm: asm() });
            }
        }
        Mv { rd, rs } => i_type(0, rs, 0b000, rd, opcode::OP_IMM),
        Addi { rd, rs1, imm } => {
            if !fits_signed(imm as i64, 12) {
                return Err(EncodeError::ImmediateRange {
                    asm: asm(),
                    bits: 12,
                });
            }
            i_type(imm, rs1, 0b000, rd, opcode::OP_IMM)
        }
        Add { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b000, rd, opcode::OP),
        Sub { rd, rs1, rs2 } => r_type(0b0100000, rs2, rs1, 0b000, rd, opcode::OP),
        Mul { rd, rs1, rs2 } => r_type(0b0000001, rs2, rs1, 0b000, rd, opcode::OP),
        Slli { rd, rs1, shamt } => i_type(shamt as i32, rs1, 0b001, rd, opcode::OP_IMM),
        Srli { rd, rs1, shamt } => i_type(shamt as i32, rs1, 0b101, rd, opcode::OP_IMM),
        Lw { rd, rs1, imm } => i_type(imm, rs1, 0b010, rd, opcode::LOAD),
        Lwu { rd, rs1, imm } => i_type(imm, rs1, 0b110, rd, opcode::LOAD),
        Ld { rd, rs1, imm } => i_type(imm, rs1, 0b011, rd, opcode::LOAD),
        Sw { rs2, rs1, imm } => s_type(imm, rs2, rs1, 0b010, opcode::STORE),
        Sd { rs2, rs1, imm } => s_type(imm, rs2, rs1, 0b011, opcode::STORE),
        Beq { rs1, rs2, offset } => branch(0b000, rs1, rs2, offset, asm())?,
        Bne { rs1, rs2, offset } => branch(0b001, rs1, rs2, offset, asm())?,
        Blt { rs1, rs2, offset } => branch(0b100, rs1, rs2, offset, asm())?,
        Bge { rs1, rs2, offset } => branch(0b101, rs1, rs2, offset, asm())?,
        Jal { rd, offset } => {
            let bytes = (offset as i64) * 4;
            if !fits_signed(bytes, 21) {
                return Err(EncodeError::ImmediateRange {
                    asm: asm(),
                    bits: 21,
                });
            }
            j_type(bytes as i32, rd, opcode::JAL)
        }
        Nop => i_type(0, XReg::ZERO, 0b000, XReg::ZERO, opcode::OP_IMM),
        Halt => 0x0010_0073, // ebreak
        Flw { fd, rs1, imm } => {
            // flw: LOAD-FP with width=010 and an F destination.
            (((imm as u32) & 0xFFF) << 20)
                | ((rs1.index() as u32) << 15)
                | (0b010 << 12)
                | ((fd.index() as u32) << 7)
                | opcode::LOAD_FP
        }
        Vsetvli { rd, rs1, sew, lmul } => {
            // bit31=0 | zimm[10:0]=vtype | rs1 | 111 | rd | OP-V
            let vtype = (sew.encoding() << 3) | lmul.encoding(); // vta=vma=0
            (vtype << 20)
                | ((rs1.index() as u32) << 15)
                | (vcat::OPCFG << 12)
                | ((rd.index() as u32) << 7)
                | opcode::OP_V
        }
        // Unit-stride vector loads: nf=0 mew=0 mop=00 vm=1 lumop=00000 |
        // rs1 | width (000=8, 101=16, 110=32) | vd.
        Vle8 { vd, rs1 } => v_unit_mem(rs1, 0b000, vd, opcode::LOAD_FP),
        Vle16 { vd, rs1 } => v_unit_mem(rs1, 0b101, vd, opcode::LOAD_FP),
        Vle32 { vd, rs1 } => v_unit_mem(rs1, 0b110, vd, opcode::LOAD_FP),
        Vse8 { vs3, rs1 } => v_unit_mem(rs1, 0b000, vs3, opcode::STORE_FP),
        Vse16 { vs3, rs1 } => v_unit_mem(rs1, 0b101, vs3, opcode::STORE_FP),
        Vse32 { vs3, rs1 } => v_unit_mem(rs1, 0b110, vs3, opcode::STORE_FP),
        VaddVv { vd, vs2, vs1 } => vv(vfunct6::VADD, vs2, vs1, vcat::OPIVV, vd),
        VaddVx { vd, vs2, rs1 } => vx(vfunct6::VADD, vs2, rs1, vcat::OPIVX, vd),
        VaddVi { vd, vs2, imm } => {
            if !fits_signed(imm as i64, 5) {
                return Err(EncodeError::ImmediateRange {
                    asm: asm(),
                    bits: 5,
                });
            }
            v_arith(
                vfunct6::VADD,
                vs2.index() as u32,
                (imm as u32) & 0x1F,
                vcat::OPIVI,
                vd.index() as u32,
            )
        }
        VmulVv { vd, vs2, vs1 } => vv(vfunct6::VMUL, vs2, vs1, vcat::OPMVV, vd),
        VmulVx { vd, vs2, rs1 } => vx(vfunct6::VMUL, vs2, rs1, vcat::OPMVX, vd),
        VmaccVx { vd, rs1, vs2 } => vx(vfunct6::VMACC, vs2, rs1, vcat::OPMVX, vd),
        VfaddVv { vd, vs2, vs1 } => vv(vfunct6::VFADD, vs2, vs1, vcat::OPFVV, vd),
        VfmulVv { vd, vs2, vs1 } => vv(vfunct6::VFMUL, vs2, vs1, vcat::OPFVV, vd),
        VfmaccVf { vd, fs1, vs2 } => v_arith(
            vfunct6::VFMACC,
            vs2.index() as u32,
            fs1.index() as u32,
            vcat::OPFVF,
            vd.index() as u32,
        ),
        VfmaccVv { vd, vs1, vs2 } => vv(vfunct6::VFMACC, vs2, vs1, vcat::OPFVV, vd),
        VmvVv { vd, vs1 } => vv(vfunct6::VMV_V, VReg::V0, vs1, vcat::OPIVV, vd),
        VmvVx { vd, rs1 } => vx(vfunct6::VMV_V, VReg::V0, rs1, vcat::OPIVX, vd),
        VmvXs { rd, vs2 } => v_arith(
            vfunct6::VMV_S,
            vs2.index() as u32,
            0,
            vcat::OPMVV,
            rd.index() as u32,
        ),
        VmvSx { vd, rs1 } => vx(vfunct6::VMV_S, VReg::V0, rs1, vcat::OPMVX, vd),
        VfmvFs { fd, vs2 } => v_arith(
            vfunct6::VMV_S,
            vs2.index() as u32,
            0,
            vcat::OPFVV,
            fd.index() as u32,
        ),
        Vslide1downVx { vd, vs2, rs1 } => vx(vfunct6::VSLIDEDOWN, vs2, rs1, vcat::OPMVX, vd),
        VslidedownVi { vd, vs2, imm } => v_arith(
            vfunct6::VSLIDEDOWN,
            vs2.index() as u32,
            (imm as u32) & 0x1F,
            vcat::OPIVI,
            vd.index() as u32,
        ),
        VindexmacVx { vd, vs2, rs } => vx(vfunct6::VINDEXMAC, vs2, rs, vcat::OPMVX, vd),
        VindexmacVvi { vd, vs2, vs1, slot } => {
            if slot >= 32 {
                return Err(EncodeError::ImmediateRange {
                    asm: asm(),
                    bits: 5,
                });
            }
            let funct6 = vfunct6::VINDEXMAC_VVI_BASE | (slot as u32 & 0xF);
            let vm = (slot as u32 >> 4) & 1;
            (funct6 << 26)
                | (vm << 25)
                | ((vs2.index() as u32) << 20)
                | ((vs1.index() as u32) << 15)
                | (vcat::OPMVV << 12)
                | ((vd.index() as u32) << 7)
                | opcode::OP_V
        }
    })
}

fn branch(f3: u32, rs1: XReg, rs2: XReg, offset: i32, asm: String) -> Result<u32, EncodeError> {
    let bytes = (offset as i64) * 4;
    if !fits_signed(bytes, 13) {
        return Err(EncodeError::ImmediateRange { asm, bits: 13 });
    }
    Ok(b_type(bytes as i32, rs2, rs1, f3, opcode::BRANCH))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::FReg;
    use crate::vtype::{Lmul, Sew};

    #[test]
    fn known_scalar_encodings() {
        // addi t0, zero, 5  ->  0x00500293
        let w = encode(&Instruction::Addi {
            rd: XReg::T0,
            rs1: XReg::ZERO,
            imm: 5,
        })
        .unwrap();
        assert_eq!(w, 0x0050_0293);
        // add a0, a1, a2 -> 0x00C58533
        let w = encode(&Instruction::Add {
            rd: XReg::A0,
            rs1: XReg::A1,
            rs2: XReg::A2,
        })
        .unwrap();
        assert_eq!(w, 0x00C5_8533);
        // ebreak
        assert_eq!(encode(&Instruction::Halt).unwrap(), 0x0010_0073);
        // nop == addi x0,x0,0
        assert_eq!(encode(&Instruction::Nop).unwrap(), 0x0000_0013);
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped by encoding field
    fn known_vector_encodings() {
        // vadd.vv v1, v2, v3: 000000 1 00010 00011 000 00001 1010111
        let w = encode(&Instruction::VaddVv {
            vd: VReg::V1,
            vs2: VReg::V2,
            vs1: VReg::V3,
        })
        .unwrap();
        assert_eq!(w, 0b000000_1_00010_00011_000_00001_1010111);
        // vle32.v v4, (a0): width 110, vm=1
        let w = encode(&Instruction::Vle32 {
            vd: VReg::V4,
            rs1: XReg::A0,
        })
        .unwrap();
        assert_eq!(w & 0x7F, opcode::LOAD_FP);
        assert_eq!((w >> 12) & 0x7, 0b110);
        assert_eq!((w >> 7) & 0x1F, 4);
    }

    #[test]
    fn vindexmac_encoding_shape() {
        let w = encode(&Instruction::VindexmacVx {
            vd: VReg::V2,
            vs2: VReg::V5,
            rs: XReg::T1,
        })
        .unwrap();
        assert_eq!(w & 0x7F, opcode::OP_V);
        assert_eq!((w >> 12) & 0x7, vcat::OPMVX);
        assert_eq!(w >> 26, vfunct6::VINDEXMAC);
        assert_eq!((w >> 20) & 0x1F, 5); // vs2
        assert_eq!((w >> 15) & 0x1F, XReg::T1.index() as u32); // rs
        assert_eq!((w >> 7) & 0x1F, 2); // vd
                                        // Distinct from vmacc.vx with the same registers.
        let m = encode(&Instruction::VmaccVx {
            vd: VReg::V2,
            rs1: XReg::T1,
            vs2: VReg::V5,
        })
        .unwrap();
        assert_ne!(w, m);
    }

    #[test]
    fn pseudo_and_range_errors() {
        assert!(matches!(
            encode(&Instruction::Li {
                rd: XReg::T0,
                imm: 1 << 40
            }),
            Err(EncodeError::Pseudo { .. })
        ));
        assert!(matches!(
            encode(&Instruction::Addi {
                rd: XReg::T0,
                rs1: XReg::T0,
                imm: 5000
            }),
            Err(EncodeError::ImmediateRange { bits: 12, .. })
        ));
        assert!(matches!(
            encode(&Instruction::VaddVi {
                vd: VReg::V1,
                vs2: VReg::V1,
                imm: 17
            }),
            Err(EncodeError::ImmediateRange { bits: 5, .. })
        ));
        assert!(matches!(
            encode(&Instruction::Beq {
                rs1: XReg::T0,
                rs2: XReg::T0,
                offset: 4096
            }),
            Err(EncodeError::ImmediateRange { bits: 13, .. })
        ));
    }

    #[test]
    fn branch_offset_bytes() {
        // bne t0, zero, -2 slots = -8 bytes.
        let w = encode(&Instruction::Bne {
            rs1: XReg::T0,
            rs2: XReg::ZERO,
            offset: -2,
        })
        .unwrap();
        assert_eq!(w & 0x7F, opcode::BRANCH);
        // Sign bit (imm[12]) must be set for negative offsets.
        assert_eq!(w >> 31, 1);
    }

    #[test]
    fn vsetvli_vtype_field() {
        let w = encode(&Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M1,
        })
        .unwrap();
        assert_eq!(w >> 31, 0);
        assert_eq!((w >> 20) & 0x7FF, 0b010_000); // vsew=010, vlmul=000
        let w = encode(&Instruction::Vsetvli {
            rd: XReg::T0,
            rs1: XReg::A0,
            sew: Sew::E32,
            lmul: Lmul::M2,
        })
        .unwrap();
        assert_eq!((w >> 20) & 0x7FF, 0b010_001); // vsew=010, vlmul=001
    }

    #[test]
    fn vindexmac_vvi_encoding_shape() {
        for slot in [0u8, 3, 15, 16, 31] {
            let w = encode(&Instruction::VindexmacVvi {
                vd: VReg::V2,
                vs2: VReg::V5,
                vs1: VReg::new(9),
                slot,
            })
            .unwrap();
            assert_eq!(w & 0x7F, opcode::OP_V, "slot {slot}");
            assert_eq!((w >> 12) & 0x7, vcat::OPMVV, "slot {slot}");
            assert_eq!(
                (w >> 26) & 0b110000,
                vfunct6::VINDEXMAC_VVI_BASE,
                "slot {slot}"
            );
            assert_eq!((w >> 26) & 0xF, (slot as u32) & 0xF, "slot {slot}");
            assert_eq!((w >> 25) & 1, (slot as u32) >> 4, "slot {slot}");
            assert_eq!((w >> 20) & 0x1F, 5); // vs2
            assert_eq!((w >> 15) & 0x1F, 9); // vs1
            assert_eq!((w >> 7) & 0x1F, 2); // vd
        }
        // Slot beyond the 5-bit field cannot be encoded.
        assert!(matches!(
            encode(&Instruction::VindexmacVvi {
                vd: VReg::V2,
                vs2: VReg::V5,
                vs1: VReg::new(9),
                slot: 32,
            }),
            Err(EncodeError::ImmediateRange { bits: 5, .. })
        ));
    }

    #[test]
    fn fp_move_encodings_differ_by_category() {
        let x = encode(&Instruction::VmvXs {
            rd: XReg::T0,
            vs2: VReg::V3,
        })
        .unwrap();
        let f = encode(&Instruction::VfmvFs {
            fd: FReg::new(5),
            vs2: VReg::V3,
        })
        .unwrap();
        assert_eq!((x >> 12) & 7, vcat::OPMVV);
        assert_eq!((f >> 12) & 7, vcat::OPFVV);
        assert_eq!(x >> 26, f >> 26);
    }
}
