//! Exhaustive builder-cleanliness sweep: every kernel builder ×
//! precision × LMUL × evaluated N:M pattern must analyze with **zero**
//! diagnostics — not just zero errors. Shipped kernels are the
//! analyzer's precision benchmark: a warning here means either the
//! builder emits something questionable or the analyzer lost precision
//! on idiomatic code, and both are bugs.
//!
//! This is the tier-1 twin of the `indexmac-cli lint` CI step (which
//! sweeps the same matrix through the same `lint_gemm` entry point).

use indexmac::experiment::{lint_gemm, ExperimentConfig, Precision};
use indexmac::kernels::{GemmDims, KernelParams};
use indexmac::sparse::NmPattern;
use indexmac::Algorithm;

/// The precisions a kernel ships at: the walk-based kernels are
/// f32-only, the `vindexmac` generations also run quantized.
fn precisions(alg: Algorithm) -> &'static [Precision] {
    match alg {
        Algorithm::IndexMac | Algorithm::IndexMac2 => {
            &[Precision::F32, Precision::I16, Precision::I8]
        }
        _ => &[Precision::F32],
    }
}

/// The register groupings a kernel ships at: only `indexmac2` groups,
/// bounded by the widening budget `lmul * 32/SEW <= 4`.
fn lmuls(alg: Algorithm, precision: Precision) -> &'static [usize] {
    match (alg, precision) {
        (Algorithm::IndexMac2, Precision::F32) => &[1, 2, 4],
        (Algorithm::IndexMac2, Precision::I16) => &[1, 2],
        _ => &[1],
    }
}

#[test]
fn every_shipped_kernel_config_analyzes_clean() {
    let dims = GemmDims {
        rows: 16,
        inner: 64,
        cols: 64,
    };
    let mut configs = 0usize;
    for alg in Algorithm::ALL {
        for &precision in precisions(alg) {
            for &lmul in lmuls(alg, precision) {
                for pattern in NmPattern::EVALUATED {
                    let cfg = ExperimentConfig {
                        precision,
                        lmul,
                        ..ExperimentConfig::paper()
                    };
                    let r = lint_gemm(dims, pattern, alg, &cfg).expect("kernel plans and builds");
                    assert!(
                        r.diagnostics.is_empty(),
                        "{alg} {precision} lmul{lmul} {pattern}: analyzer flagged a shipped \
                         kernel:\n{}",
                        r.diagnostics
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                    assert!(r.verified, "clean analysis must mint a token");
                    configs += 1;
                }
            }
        }
    }
    // 3 f32-only walk kernels + indexmac (3 precisions) + indexmac2
    // (3 + 2 + 1 groupings), each over the evaluated patterns.
    assert_eq!(configs, (3 + 3 + 6) * NmPattern::EVALUATED.len());
}

/// Unrolling and tile-shape variations must stay clean too — the
/// analyzer has to hold up across the planner's whole envelope, not
/// just the defaults.
#[test]
fn unroll_and_tile_variants_analyze_clean() {
    let dims = GemmDims {
        rows: 8,
        inner: 32,
        cols: 32,
    };
    for unroll in [1, 2, 4] {
        for tile_rows in [8, 16] {
            let cfg = ExperimentConfig {
                tile_rows,
                params: KernelParams {
                    unroll,
                    ..Default::default()
                },
                ..ExperimentConfig::paper()
            };
            for alg in Algorithm::ALL {
                let r = lint_gemm(dims, NmPattern::P2_4, alg, &cfg).expect("plans and builds");
                assert!(
                    r.diagnostics.is_empty(),
                    "{alg} unroll{unroll} tile{tile_rows}: {:?}",
                    r.diagnostics
                );
            }
        }
    }
}
