//! Parallel experiment sweeps: fan [`compare_gemm`]-style comparisons
//! out over a (pattern × dims × dataflow) grid on a rayon thread pool.
//!
//! Every figure of the paper is a loop of independent simulations, and
//! the follow-up evaluations (arXiv:2501.10189, arXiv:2305.05559) are
//! sweep-heavy in exactly the same way. This module is the batching
//! substrate for all of them:
//!
//! * a [`SweepGrid`] names the cartesian product to cover and derives a
//!   **deterministic per-cell seed** from its `base_seed`, so a sweep's
//!   operands do not depend on scheduling, thread count or cell order;
//! * [`run_cells`] / [`run_grid`] execute cells in parallel (with
//!   [`run_grid_serial`] as the reference implementation — same seeds
//!   in, same reports out);
//! * every worker thread runs **warm**: cells flow through the
//!   per-thread context of [`crate::experiment`], which reuses one
//!   `Simulator` via in-place reset and caches built kernels in a
//!   decode-once `ProgramCache`, so a grid that repeats a shape across
//!   seeds decodes each distinct kernel exactly once per worker (see
//!   [`crate::experiment::decode_cache_stats`]);
//! * [`SweepResult`] serializes to JSON through the workspace's `serde`
//!   shim for downstream tooling.
//!
//! ```
//! use indexmac::experiment::ExperimentConfig;
//! use indexmac::kernels::GemmDims;
//! use indexmac::sparse::NmPattern;
//! use indexmac::sweep::{run_grid, SweepGrid};
//!
//! let grid = SweepGrid::new(
//!     NmPattern::EVALUATED.to_vec(),
//!     vec![GemmDims { rows: 8, inner: 64, cols: 32 }],
//! );
//! let result = run_grid(&grid, &ExperimentConfig::fast())?;
//! assert_eq!(result.cells.len(), 2);
//! assert!(result.cells.iter().all(|c| c.speedup() > 1.0));
//! # Ok::<(), indexmac::experiment::ExperimentError>(())
//! ```

use crate::experiment::{compare_gemm, ExperimentConfig, ExperimentError, GemmComparison};
use indexmac_kernels::{Dataflow, GemmDims};
use indexmac_sparse::NmPattern;
use rayon::prelude::*;
use serde::{Serialize, Value};

/// One point of a sweep: a fully specified comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Uncapped GEMM shape (the configured caps still apply).
    pub dims: GemmDims,
    /// Structured-sparsity pattern of A.
    pub pattern: NmPattern,
    /// Loop order of the Row-Wise-SpMM baseline.
    pub dataflow: Dataflow,
    /// Seed for operand generation in this cell.
    pub seed: u64,
}

/// A cartesian (pattern × dims × dataflow) product with deterministic
/// per-cell seeds.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Sparsity patterns to sweep.
    pub patterns: Vec<NmPattern>,
    /// GEMM shapes to sweep.
    pub dims: Vec<GemmDims>,
    /// Baseline dataflows to sweep (defaults to B-stationary only,
    /// the paper's choice).
    pub dataflows: Vec<Dataflow>,
    /// Root seed every per-cell seed derives from.
    pub base_seed: u64,
}

/// SplitMix64 finalizer: decorrelates structured coordinate values into
/// independent-looking seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SweepGrid {
    /// A grid over `patterns` × `dims` with the default B-stationary
    /// dataflow and the paper's default seed.
    pub fn new(patterns: Vec<NmPattern>, dims: Vec<GemmDims>) -> Self {
        Self {
            patterns,
            dims,
            dataflows: vec![Dataflow::BStationary],
            base_seed: ExperimentConfig::paper().seed,
        }
    }

    /// A grid over a model's heaviest **distinct** GEMM shapes (up to
    /// `top` of them) × the evaluated patterns — the standard
    /// per-workload sweep preset. Transformer stacks repeat one block
    /// geometry, so the distinct shapes cover the whole network with a
    /// handful of cells.
    pub fn for_model(model: &indexmac_models::Model, top: usize) -> Self {
        let mut dims: Vec<GemmDims> = Vec::new();
        for layer in model.heaviest_layers(model.layers.len()) {
            if dims.len() == top {
                break;
            }
            if !dims.contains(&layer.gemm) {
                dims.push(layer.gemm);
            }
        }
        Self::new(NmPattern::EVALUATED.to_vec(), dims)
    }

    /// Replaces the dataflow axis (e.g. [`Dataflow::ALL`] for the
    /// Section IV-A ablation).
    #[must_use]
    pub fn with_dataflows(mut self, dataflows: Vec<Dataflow>) -> Self {
        self.dataflows = dataflows;
        self
    }

    /// Replaces the root seed.
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Number of cells in the product.
    pub fn len(&self) -> usize {
        self.patterns.len() * self.dims.len() * self.dataflows.len()
    }

    /// Whether any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the product in deterministic order
    /// (pattern-major, then dims, then dataflow), deriving each cell's
    /// seed from `base_seed` and the cell's coordinates — independent
    /// of scheduling and stable under re-runs.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.len());
        for (pi, &pattern) in self.patterns.iter().enumerate() {
            for (di, &dims) in self.dims.iter().enumerate() {
                for (fi, &dataflow) in self.dataflows.iter().enumerate() {
                    let coord = ((pi as u64) << 42) | ((di as u64) << 21) | fi as u64;
                    cells.push(SweepCell {
                        dims,
                        pattern,
                        dataflow,
                        seed: mix(self.base_seed ^ mix(coord)),
                    });
                }
            }
        }
        cells
    }
}

/// Result of one sweep cell: the cell's coordinates plus the full
/// baseline/proposed comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that produced this result.
    pub cell: SweepCell,
    /// The GEMM shape actually simulated (after caps).
    pub capped: GemmDims,
    /// Full measurements of both kernels.
    pub comparison: GemmComparison,
}

impl CellResult {
    /// Baseline cycles / proposed cycles (Fig. 4/5 metric).
    pub fn speedup(&self) -> f64 {
        self.comparison.speedup()
    }

    /// Proposed memory accesses / baseline's (Fig. 6 metric).
    pub fn mem_ratio(&self) -> f64 {
        self.comparison.mem_ratio()
    }
}

impl Serialize for SweepCell {
    fn to_value(&self) -> Value {
        Value::object([
            ("rows", self.dims.rows.to_value()),
            ("inner", self.dims.inner.to_value()),
            ("cols", self.dims.cols.to_value()),
            ("pattern", self.pattern.to_string().to_value()),
            ("dataflow", self.dataflow.to_string().to_value()),
            ("seed", self.seed.to_value()),
        ])
    }
}

impl Serialize for CellResult {
    fn to_value(&self) -> Value {
        let base = &self.comparison.baseline.report;
        let prop = &self.comparison.proposed.report;
        Value::object([
            ("cell", self.cell.to_value()),
            (
                "capped",
                Value::object([
                    ("rows", self.capped.rows.to_value()),
                    ("inner", self.capped.inner.to_value()),
                    ("cols", self.capped.cols.to_value()),
                ]),
            ),
            ("baseline_cycles", base.cycles.to_value()),
            ("proposed_cycles", prop.cycles.to_value()),
            ("baseline_instructions", base.instructions.to_value()),
            ("proposed_instructions", prop.instructions.to_value()),
            (
                "baseline_mem_accesses",
                base.mem.total_accesses().to_value(),
            ),
            (
                "proposed_mem_accesses",
                prop.mem.total_accesses().to_value(),
            ),
            ("speedup", self.speedup().to_value()),
            ("mem_ratio", self.mem_ratio().to_value()),
        ])
    }
}

/// A completed sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Root seed the per-cell seeds derived from.
    pub base_seed: u64,
    /// Thread count the parallel runner observed (1 for the serial
    /// reference runner).
    pub threads: usize,
    /// Element precision every cell ran at (from the campaign
    /// configuration): `f32`, `i16` or `i8`.
    pub precision: crate::experiment::Precision,
    /// Timing backend every cell ran under (from the campaign
    /// configuration's [`indexmac_vpu::SimConfig`]).
    pub timing: indexmac_vpu::TimingKind,
    /// Per-cell results, in [`SweepGrid::cells`] order.
    pub cells: Vec<CellResult>,
}

impl SweepResult {
    /// `(min, max)` speedup across cells, or `None` for empty sweeps.
    pub fn speedup_range(&self) -> Option<(f64, f64)> {
        let mut it = self.cells.iter().map(CellResult::speedup);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), s| (lo.min(s), hi.max(s))))
    }

    /// Geometric-mean speedup across cells (the usual cross-shape
    /// summary), or `None` for empty sweeps.
    pub fn geomean_speedup(&self) -> Option<f64> {
        if self.cells.is_empty() {
            return None;
        }
        let log_sum: f64 = self.cells.iter().map(|c| c.speedup().ln()).sum();
        Some((log_sum / self.cells.len() as f64).exp())
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("shim serialization is total")
    }

    /// Pretty-printed JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("shim serialization is total")
    }
}

impl Serialize for SweepResult {
    fn to_value(&self) -> Value {
        Value::object([
            ("base_seed", self.base_seed.to_value()),
            ("threads", self.threads.to_value()),
            ("precision", self.precision.to_string().to_value()),
            ("timing", self.timing.name().to_value()),
            ("geomean_speedup", self.geomean_speedup().to_value()),
            ("cells", self.cells.to_value()),
        ])
    }
}

/// Runs one cell: [`compare_gemm`] with the cell's seed and dataflow
/// overriding the campaign configuration.
///
/// # Errors
///
/// See [`compare_gemm`].
pub fn run_cell(cell: SweepCell, cfg: &ExperimentConfig) -> Result<CellResult, ExperimentError> {
    let cell_cfg = ExperimentConfig {
        seed: cell.seed,
        params: indexmac_kernels::KernelParams {
            dataflow: cell.dataflow,
            ..cfg.params
        },
        ..*cfg
    };
    let comparison = compare_gemm(cell.dims, cell.pattern, &cell_cfg)?;
    Ok(CellResult {
        cell,
        capped: cfg.caps.apply(cell.dims),
        comparison,
    })
}

/// Runs `cells` in parallel on the current rayon thread pool,
/// preserving input order. Wrap the call in
/// `rayon::ThreadPoolBuilder::new().num_threads(n).build()?.install(..)`
/// to bound the parallelism.
///
/// # Errors
///
/// Fails with the first cell error in input order (every cell is still
/// executed — the grid is fanned out before errors are collected).
pub fn run_cells(
    cells: Vec<SweepCell>,
    cfg: &ExperimentConfig,
) -> Result<Vec<CellResult>, ExperimentError> {
    cells
        .into_par_iter()
        .map(|cell| run_cell(cell, cfg))
        .collect::<Vec<_>>()
        .into_iter()
        .collect()
}

/// Runs the whole grid in parallel.
///
/// # Errors
///
/// See [`run_cells`].
pub fn run_grid(grid: &SweepGrid, cfg: &ExperimentConfig) -> Result<SweepResult, ExperimentError> {
    let cells = run_cells(grid.cells(), cfg)?;
    Ok(SweepResult {
        base_seed: grid.base_seed,
        threads: rayon::current_num_threads(),
        precision: cfg.precision,
        timing: cfg.sim.timing,
        cells,
    })
}

/// Serial reference implementation of [`run_grid`]: a plain
/// [`compare_gemm`] loop. Same seeds ⇒ same reports; the unit tests
/// assert the two runners agree cell-for-cell.
///
/// # Errors
///
/// See [`run_cells`].
pub fn run_grid_serial(
    grid: &SweepGrid,
    cfg: &ExperimentConfig,
) -> Result<SweepResult, ExperimentError> {
    let mut cells = Vec::with_capacity(grid.len());
    for cell in grid.cells() {
        cells.push(run_cell(cell, cfg)?);
    }
    Ok(SweepResult {
        base_seed: grid.base_seed,
        threads: 1,
        precision: cfg.precision,
        timing: cfg.sim.timing,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn small_grid() -> SweepGrid {
        SweepGrid::new(
            NmPattern::EVALUATED.to_vec(),
            vec![
                GemmDims {
                    rows: 4,
                    inner: 32,
                    cols: 16,
                },
                GemmDims {
                    rows: 8,
                    inner: 64,
                    cols: 32,
                },
            ],
        )
    }

    fn fast_cfg() -> ExperimentConfig {
        ExperimentConfig::fast()
    }

    #[test]
    fn grid_product_order_and_seeds_are_deterministic() {
        let grid = small_grid().with_dataflows(Dataflow::ALL.to_vec());
        let cells = grid.cells();
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells, grid.cells(), "cells() must be reproducible");
        let seeds: HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), cells.len(), "per-cell seeds must be distinct");
        // Pattern-major order: the first dataflow-count × dims-count
        // cells all use the first pattern.
        assert!(cells[..6].iter().all(|c| c.pattern == NmPattern::P1_4));
    }

    #[test]
    fn different_base_seeds_give_different_cell_seeds() {
        let a = small_grid().with_base_seed(1).cells();
        let b = small_grid().with_base_seed(2).cells();
        assert!(a.iter().zip(&b).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn parallel_equals_serial_reference() {
        let grid = small_grid();
        let cfg = fast_cfg();
        let par = run_grid(&grid, &cfg).unwrap();
        let ser = run_grid_serial(&grid, &cfg).unwrap();
        assert_eq!(
            par.cells, ser.cells,
            "parallel runner must match the serial loop"
        );
    }

    #[test]
    fn parallel_equals_manual_compare_gemm_loop() {
        // The acceptance criterion verbatim: same seeds ⇒ the same
        // reports as a hand-written serial compare_gemm loop.
        let grid = small_grid();
        let cfg = fast_cfg();
        let par = run_grid(&grid, &cfg).unwrap();
        for (result, cell) in par.cells.iter().zip(grid.cells()) {
            let cell_cfg = ExperimentConfig {
                seed: cell.seed,
                ..cfg
            };
            let manual = compare_gemm(cell.dims, cell.pattern, &cell_cfg).unwrap();
            assert_eq!(result.comparison.baseline.report, manual.baseline.report);
            assert_eq!(result.comparison.proposed.report, manual.proposed.report);
        }
    }

    #[test]
    fn results_are_identical_across_thread_pool_sizes() {
        let grid = small_grid();
        let cfg = fast_cfg();
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let result = pool.install(|| run_grid(&grid, &cfg)).unwrap();
            assert_eq!(result.threads, threads);
            runs.push(result.cells);
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn reported_threads_is_the_installed_pool_width() {
        // `SweepResult.threads` is stamped from
        // `rayon::current_num_threads()` *inside* the installed scope,
        // so it must report the pool the sweep ran on — not the global
        // pool, not the machine's core count.
        let grid = small_grid();
        let cfg = fast_cfg();
        // Oversubscribed: a pool wider than the machine still reports
        // its configured width.
        let wide = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        let result = wide.install(|| run_grid(&grid, &cfg)).unwrap();
        assert_eq!(result.threads, 8);
        // Nested installs: the innermost pool wins.
        let inner = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let nested = wide
            .install(|| inner.install(|| run_grid(&grid, &cfg)))
            .unwrap();
        assert_eq!(nested.threads, 3);
        // The serial reference always reports exactly one thread,
        // whatever pool it is called from.
        let serial = wide.install(|| run_grid_serial(&grid, &cfg)).unwrap();
        assert_eq!(serial.threads, 1);
    }

    #[test]
    fn sweep_actually_runs_on_multiple_threads() {
        let grid = SweepGrid::new(
            vec![NmPattern::P1_4],
            (1..=8)
                .map(|r| GemmDims {
                    rows: r,
                    inner: 32,
                    cols: 16,
                })
                .collect(),
        );
        let cfg = fast_cfg();
        let seen = Mutex::new(HashSet::new());
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let results: Vec<_> = pool.install(|| {
            grid.cells()
                .into_par_iter()
                .map(|cell| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    run_cell(cell, &cfg).unwrap()
                })
                .collect()
        });
        assert_eq!(results.len(), 8);
        assert!(
            seen.into_inner().unwrap().len() > 1,
            "grid cells should spread across worker threads"
        );
    }

    #[test]
    fn dataflow_axis_reaches_the_baseline_kernel() {
        // A- vs B-stationary must change the baseline measurements
        // (same operands, different loop order).
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let grid = SweepGrid::new(vec![NmPattern::P1_4], vec![dims])
            .with_dataflows(vec![Dataflow::AStationary, Dataflow::BStationary]);
        let result = run_grid(&grid, &fast_cfg()).unwrap();
        let by_flow: Vec<u64> = result
            .cells
            .iter()
            .map(|c| c.comparison.baseline.report.cycles)
            .collect();
        assert_eq!(by_flow.len(), 2);
        // Seeds differ per cell, so compare against a same-seed rerun
        // rather than across cells: pin the seed and flip only dataflow.
        let mut cells = grid.cells();
        for c in &mut cells {
            c.seed = 7;
        }
        let pinned = run_cells(cells, &fast_cfg()).unwrap();
        assert_ne!(
            pinned[0].comparison.baseline.report.cycles,
            pinned[1].comparison.baseline.report.cycles,
            "dataflow override must reach the baseline kernel"
        );
    }

    #[test]
    fn indexmac2_sweep_beats_indexmac_on_cycles_and_instret() {
        // Acceptance shape of the second-generation comparison: sweep
        // the evaluated patterns with IndexMac as baseline and the vvi
        // kernel proposed; every cell must win on both dynamic metrics.
        use crate::experiment::Algorithm;
        let grid = SweepGrid::new(
            NmPattern::EVALUATED.to_vec(),
            vec![GemmDims {
                rows: 16,
                inner: 128,
                cols: 32,
            }],
        );
        let cfg = ExperimentConfig {
            baseline: Algorithm::IndexMac,
            proposed: Algorithm::IndexMac2,
            ..fast_cfg()
        };
        let result = run_grid(&grid, &cfg).unwrap();
        assert_eq!(result.cells.len(), 2);
        for cell in &result.cells {
            let base = &cell.comparison.baseline.report;
            let prop = &cell.comparison.proposed.report;
            assert_eq!(cell.comparison.baseline.algorithm, Algorithm::IndexMac);
            assert_eq!(cell.comparison.proposed.algorithm, Algorithm::IndexMac2);
            assert!(
                prop.cycles < base.cycles,
                "{}: vvi {} cycles vs vx {}",
                cell.cell.pattern,
                prop.cycles,
                base.cycles
            );
            assert!(
                prop.instructions < base.instructions,
                "{}: vvi {} instret vs vx {}",
                cell.cell.pattern,
                prop.instructions,
                base.instructions
            );
        }
        let json = result.to_json();
        assert!(json.contains("\"baseline_instructions\""));
        assert!(json.contains("\"proposed_instructions\""));
    }

    #[test]
    fn json_round_through_shim_contains_cells() {
        let grid = SweepGrid::new(
            vec![NmPattern::P1_4],
            vec![GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            }],
        );
        let result = run_grid(&grid, &fast_cfg()).unwrap();
        let json = result.to_json();
        assert!(json.contains("\"cells\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"pattern\":\"1:4\""), "json was: {json}");
        assert!(json.contains("\"precision\":\"f32\""), "json was: {json}");
        assert!(json.contains("\"timing\":\"inorder\""), "json was: {json}");
        let pretty = result.to_json_pretty();
        assert!(pretty.contains("\n  \"cells\""));
    }

    #[test]
    fn timing_backend_reaches_every_cell_and_the_json() {
        // The same grid under each backend: instret is backend-invariant,
        // the JSON records which backend produced the cycles, and the
        // pipelined front end is never faster than the scoreboard.
        use indexmac_vpu::TimingKind;
        let grid = SweepGrid::new(
            vec![NmPattern::P1_4],
            vec![GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            }],
        );
        let mut results = Vec::new();
        for kind in TimingKind::ALL {
            let result = run_grid(&grid, &fast_cfg().with_timing(kind)).unwrap();
            assert_eq!(result.timing, kind);
            let json = result.to_json();
            assert!(
                json.contains(&format!("\"timing\":\"{kind}\"")),
                "json was: {json}"
            );
            results.push(result);
        }
        let base = &results[0].cells[0];
        for r in &results[1..] {
            let cell = &r.cells[0];
            assert_eq!(
                cell.comparison.baseline.report.instructions,
                base.comparison.baseline.report.instructions,
                "{}: baseline instret is backend-invariant",
                r.timing
            );
            assert_eq!(
                cell.comparison.proposed.report.instructions,
                base.comparison.proposed.report.instructions,
                "{}: proposed instret is backend-invariant",
                r.timing
            );
        }
        let (inorder, pipelined) = (&results[0], &results[1]);
        assert!(
            pipelined.cells[0].comparison.proposed.report.cycles
                >= inorder.cells[0].comparison.proposed.report.cycles,
            "pipelined adds front-end depth, never removes cycles"
        );
    }

    #[test]
    fn quantized_sweep_records_precision_and_wins_on_both_metrics() {
        use crate::experiment::{Algorithm, Precision};
        let grid = SweepGrid::new(
            NmPattern::EVALUATED.to_vec(),
            vec![GemmDims {
                rows: 16,
                inner: 128,
                cols: 32,
            }],
        );
        let cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::quantized(Precision::I8)
        };
        let result = run_grid(&grid, &cfg).unwrap();
        assert_eq!(result.precision, Precision::I8);
        assert!(result.to_json().contains("\"precision\":\"i8\""));
        for cell in &result.cells {
            assert_eq!(cell.comparison.baseline.algorithm, Algorithm::IndexMac);
            assert_eq!(cell.comparison.proposed.algorithm, Algorithm::IndexMac2);
            assert!(
                cell.comparison.proposed.report.instructions
                    < cell.comparison.baseline.report.instructions,
                "{}: vvi must beat vx on instret at e8",
                cell.cell.pattern
            );
        }
        // The serial reference runner agrees at the quantized precision.
        let ser = run_grid_serial(&grid, &cfg).unwrap();
        assert_eq!(ser.cells, result.cells);
        assert_eq!(ser.precision, Precision::I8);
    }

    #[test]
    fn for_model_takes_heaviest_distinct_shapes() {
        let bert = indexmac_models::bert_base();
        let grid = SweepGrid::for_model(&bert, 2);
        // The two heaviest distinct shapes of any block: FFN up & down.
        assert_eq!(grid.dims.len(), 2);
        assert_eq!(grid.patterns, NmPattern::EVALUATED.to_vec());
        for d in &grid.dims {
            assert_eq!(d.rows * d.inner, 768 * 3072);
        }
        assert_ne!(grid.dims[0], grid.dims[1]);
        // Asking for more shapes than exist returns all distinct ones.
        let all = SweepGrid::for_model(&bert, 100);
        assert_eq!(all.dims.len(), 3);
        // A CNN model works identically.
        let cnn = SweepGrid::for_model(&indexmac_models::resnet50(), 4);
        assert_eq!(cnn.dims.len(), 4);
        // top = 0 means no shapes, not all of them.
        assert!(SweepGrid::for_model(&bert, 0).is_empty());
    }

    #[test]
    fn serial_sweep_runs_warm_through_the_decode_cache() {
        // A grid of one shape × two patterns, swept twice on this
        // thread: the second sweep must be all decode-cache hits (the
        // per-cell seeds differ, but the kernels do not), and its
        // results bit-identical to the first.
        crate::experiment::reset_decode_cache();
        let grid = SweepGrid::new(
            NmPattern::EVALUATED.to_vec(),
            vec![GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            }],
        );
        let cfg = fast_cfg();
        let first = run_grid_serial(&grid, &cfg).unwrap();
        let after_first = crate::experiment::decode_cache_stats();
        // 2 patterns × (baseline + proposed kernels) = 4 distinct programs.
        assert_eq!(after_first.misses, 4);
        let second = run_grid_serial(&grid.clone().with_base_seed(99), &cfg).unwrap();
        let after_second = crate::experiment::decode_cache_stats();
        assert_eq!(after_second.misses, 4, "re-sweeping decodes nothing new");
        assert_eq!(after_second.hits, after_first.hits + 4);
        // Warm reuse must not perturb the measurements: same cells,
        // same seeds, same reports.
        let rerun = run_grid_serial(&grid, &cfg).unwrap();
        assert_eq!(first.cells, rerun.cells);
        assert_ne!(first.cells, second.cells, "different base seed, data");
    }

    #[test]
    fn empty_grid_is_empty_not_an_error() {
        let grid = SweepGrid::new(
            vec![],
            vec![GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            }],
        );
        assert!(grid.is_empty());
        let result = run_grid(&grid, &fast_cfg()).unwrap();
        assert!(result.cells.is_empty());
        assert_eq!(result.speedup_range(), None);
        assert_eq!(result.geomean_speedup(), None);
    }
}
