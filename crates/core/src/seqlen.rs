//! Sequence-length scaling analysis for the transformer workload
//! family.
//!
//! A transformer's weight GEMMs batch their columns over the sequence:
//! every projection is `A[rows × inner] × B[inner × seq_len]`, so
//! `seq_len` plays the role the output-pixel count plays for CNNs. This
//! module sweeps one layer of a [`TransformerConfig`] across sequence
//! lengths and reports how the baseline-vs-proposed comparison scales —
//! the transformer counterpart of the `scaling` size-capping story: at
//! short sequences the resident B tile is under-used and fixed per-tile
//! work dominates; past a full column tile the speedup settles.

use crate::experiment::{compare_gemm, ExperimentConfig, ExperimentError, GemmComparison};
use indexmac_kernels::GemmDims;
use indexmac_models::TransformerConfig;
use indexmac_sparse::NmPattern;

/// One sequence-length point of a scaling sweep.
#[derive(Debug, Clone)]
pub struct SeqLenPoint {
    /// The swept sequence length (the GEMM's column count, pre-caps).
    pub seq_len: usize,
    /// The lowered GEMM at this sequence length.
    pub gemm: GemmDims,
    /// Baseline-vs-proposed measurements at this point.
    pub comparison: GemmComparison,
}

/// A completed sequence-length scaling sweep of one layer.
#[derive(Debug, Clone)]
pub struct SeqLenScaling {
    /// The transformer the layer came from.
    pub model: String,
    /// The swept layer's name (e.g. `block0.ffn.up`).
    pub layer: String,
    /// Sparsity pattern of the weights.
    pub pattern: NmPattern,
    /// Per-sequence-length results, in input order.
    pub points: Vec<SeqLenPoint>,
}

impl SeqLenScaling {
    /// `(seq_len, speedup)` pairs, in input order.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.seq_len, p.comparison.speedup()))
            .collect()
    }

    /// The sequence length with the best proposed-kernel speedup.
    pub fn best(&self) -> Option<&SeqLenPoint> {
        self.points.iter().max_by(|a, b| {
            a.comparison
                .speedup()
                .partial_cmp(&b.comparison.speedup())
                .expect("speedups are finite")
        })
    }
}

/// Sweeps `layer` of `transformer` across `seq_lens`, running the
/// configured baseline/proposed comparison at every point. All other
/// geometry (the weight matrix) is held fixed; only the batched column
/// count changes, exactly as serving the same network at different
/// sequence lengths would.
///
/// # Errors
///
/// Returns [`ExperimentError`] if any point fails to simulate; see
/// [`compare_gemm`].
///
/// # Panics
///
/// Panics if `layer` names no layer of `transformer` or any swept
/// length is zero — the sweep inputs are static per harness, so both
/// are programming errors (matching
/// [`TransformerConfig::with_seq_len`]).
pub fn seqlen_scaling(
    transformer: &TransformerConfig,
    layer: &str,
    seq_lens: &[usize],
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<SeqLenScaling, ExperimentError> {
    // Resolve the layer once — only its column count varies per point.
    let model = transformer.model();
    let base_gemm = model
        .layer(layer)
        .unwrap_or_else(|| panic!("no layer `{layer}` in {}", transformer.name))
        .gemm;
    let mut points = Vec::with_capacity(seq_lens.len());
    for &seq_len in seq_lens {
        assert!(seq_len > 0, "swept sequence lengths must be positive");
        let gemm = GemmDims {
            cols: seq_len,
            ..base_gemm
        };
        let comparison = compare_gemm(gemm, pattern, cfg)?;
        points.push(SeqLenPoint {
            seq_len,
            gemm,
            comparison,
        });
    }
    Ok(SeqLenScaling {
        model: transformer.name.clone(),
        layer: layer.to_string(),
        pattern,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Algorithm;
    use indexmac_models::GemmCaps;

    fn fast_transformer_cfg() -> ExperimentConfig {
        ExperimentConfig {
            caps: GemmCaps::smoke(),
            ..ExperimentConfig::transformer()
        }
    }

    #[test]
    fn sweeps_every_requested_length() {
        let tc = TransformerConfig::bert_base();
        let s = seqlen_scaling(
            &tc,
            "block0.ffn.up",
            &[8, 16, 32],
            NmPattern::P1_4,
            &fast_transformer_cfg(),
        )
        .unwrap();
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.model, "BERT-base");
        assert_eq!(s.layer, "block0.ffn.up");
        for (p, want) in s.points.iter().zip([8, 16, 32]) {
            assert_eq!(p.seq_len, want);
            assert_eq!(p.gemm.cols, want, "cols are the sequence length");
            assert_eq!(p.gemm.rows, tc.d_ff);
            assert_eq!(p.gemm.inner, tc.d_model);
            assert_eq!(p.comparison.proposed.algorithm, Algorithm::IndexMac2);
            assert!(p.comparison.proposed.report.cycles > 0);
        }
        let speedups = s.speedups();
        assert_eq!(speedups.len(), 3);
        assert!(s.best().is_some());
    }

    #[test]
    fn attention_projection_sweeps_too() {
        let tc = TransformerConfig::vit_b16();
        let s = seqlen_scaling(
            &tc,
            "block0.attn.q",
            &[16, 64],
            NmPattern::P2_4,
            &fast_transformer_cfg(),
        )
        .unwrap();
        assert!(s
            .points
            .iter()
            .all(|p| p.gemm.rows == 768 && p.gemm.inner == 768));
        // The uncapped column count tracks the swept length even when
        // the simulation itself is capped.
        assert_eq!(s.points[1].gemm.cols, 64);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_seq_len_panics_with_a_clear_message() {
        let tc = TransformerConfig::bert_base();
        let _ = seqlen_scaling(
            &tc,
            "block0.ffn.up",
            &[8, 0],
            NmPattern::P1_4,
            &fast_transformer_cfg(),
        );
    }

    #[test]
    #[should_panic(expected = "no layer")]
    fn unknown_layer_panics() {
        let tc = TransformerConfig::bert_base();
        let _ = seqlen_scaling(
            &tc,
            "block99.nope",
            &[8],
            NmPattern::P1_4,
            &fast_transformer_cfg(),
        );
    }
}
