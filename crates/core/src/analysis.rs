//! Bottleneck analysis: attribute a run's cycles to the machine
//! resources that bound it.
//!
//! The paper argues qualitatively that Row-Wise-SpMM is bound by its
//! per-nonzero vector loads and cross-domain moves, and that `vindexmac`
//! shifts the kernel toward engine throughput. This module turns the
//! [`RunReport`] counters into that attribution quantitatively.

use indexmac_isa::InstrClass;
use indexmac_vpu::{RunReport, SimConfig};
use std::fmt;

/// The resource that dominates a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// The vector engine is occupied most of the time: compute-bound.
    EngineThroughput,
    /// Cross-domain (`vmv.x.s`) round trips dominate.
    CrossDomainSync,
    /// Memory latency/bandwidth dominates (loads gate the engine).
    Memory,
    /// The scalar front-end (issue/ROB/queue stalls) dominates.
    ScalarFrontend,
}

impl fmt::Display for BoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundKind::EngineThroughput => write!(f, "engine-throughput-bound"),
            BoundKind::CrossDomainSync => write!(f, "sync-bound"),
            BoundKind::Memory => write!(f, "memory-bound"),
            BoundKind::ScalarFrontend => write!(f, "frontend-bound"),
        }
    }
}

/// Relative pressure each resource puts on a run. The four shares are
/// normalised to sum to 1; they rank what the kernel leans on hardest
/// (raw per-resource cycle demands overlap heavily in a decoupled
/// machine, so an exact partition of wall-clock cycles does not exist).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bottleneck {
    /// Vector-engine occupancy pressure.
    pub engine_share: f64,
    /// Vector-to-scalar round-trip pressure
    /// (`v2s_syncs * (1 + v2s_latency)`).
    pub sync_share: f64,
    /// Vector-memory latency pressure
    /// (`vector loads * hit/miss-weighted latency`).
    pub memory_share: f64,
    /// Scalar front-end pressure (vector-queue + ROB stall cycles).
    pub frontend_share: f64,
    /// Absolute cycle-equivalent demands behind the shares, in the same
    /// order: engine, sync, memory, frontend. These are comparable
    /// *across runs* (e.g. baseline vs proposed on the same operands),
    /// where the normalised shares are only comparable within one run.
    pub raw: [f64; 4],
    /// The dominant resource.
    pub bound: BoundKind,
}

/// Attributes the cycles of `report` on a machine configured as `cfg`.
pub fn analyze(report: &RunReport, cfg: &SimConfig) -> Bottleneck {
    let engine_raw = report.engine_busy_cycles as f64;
    let sync_raw = (report.v2s_syncs * (1 + cfg.v2s_latency)) as f64;
    // Effective per-load latency: weight L2 hits and misses.
    let l2_hit = report.l2_hit_rate;
    let eff_load_latency = cfg.hierarchy.l2_latency as f64 * l2_hit
        + (cfg.hierarchy.l2_latency + cfg.hierarchy.dram.latency) as f64 * (1.0 - l2_hit);
    let memory_raw = report.mem.vector_loads as f64 * eff_load_latency;
    let frontend_raw = (report.vq_stall_cycles + report.rob_stall_cycles) as f64;

    let total = (engine_raw + sync_raw + memory_raw + frontend_raw).max(1.0);
    let engine_share = engine_raw / total;
    let sync_share = sync_raw / total;
    let memory_share = memory_raw / total;
    let frontend_share = frontend_raw / total;

    let shares = [
        (BoundKind::EngineThroughput, engine_share),
        (BoundKind::CrossDomainSync, sync_share),
        (BoundKind::Memory, memory_share),
        (BoundKind::ScalarFrontend, frontend_share),
    ];
    let bound = shares
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("shares are finite"))
        .expect("non-empty")
        .0;

    Bottleneck {
        engine_share,
        sync_share,
        memory_share,
        frontend_share,
        raw: [engine_raw, sync_raw, memory_raw, frontend_raw],
        bound,
    }
}

/// Instruction-mix summary used alongside the bottleneck attribution.
pub fn mix_summary(report: &RunReport) -> String {
    let c = report.counts;
    let total = c.total().max(1);
    let pct = |n: u64| 100.0 * n as f64 / total as f64;
    format!(
        "loads {:.0}% | MAC/indexmac {:.0}% | slides {:.0}% | moves {:.0}% | scalar {:.0}%",
        pct(c.get(InstrClass::VLoad) + c.get(InstrClass::ScalarLoad)),
        pct(c.get(InstrClass::VMac) + c.get(InstrClass::VIndexMac)),
        pct(c.get(InstrClass::VSlide)),
        pct(c.get(InstrClass::VMvToScalar) + c.get(InstrClass::VMvFromScalar)),
        pct(c.get(InstrClass::ScalarAlu) + c.get(InstrClass::ControlFlow)),
    )
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (engine {:.0}%, sync {:.0}%, memory {:.0}%, frontend {:.0}%)",
            self.bound,
            self.engine_share * 100.0,
            self.sync_share * 100.0,
            self.memory_share * 100.0,
            self.frontend_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_gemm, Algorithm, ExperimentConfig};
    use crate::kernels::GemmDims;
    use crate::sparse::NmPattern;

    fn reports() -> (RunReport, RunReport, SimConfig) {
        // A representative shape: enough rows that tile preloads are
        // amortised, as in every real layer (tiny-row corner cases are
        // legitimate but not what attribution is for).
        let cfg = ExperimentConfig {
            verify: false,
            ..ExperimentConfig::paper()
        };
        let dims = GemmDims {
            rows: 64,
            inner: 128,
            cols: 64,
        };
        let base = run_gemm(dims, NmPattern::P1_4, Algorithm::RowWiseSpmm, &cfg).unwrap();
        let prop = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &cfg).unwrap();
        (base.report, prop.report, cfg.sim)
    }

    #[test]
    fn shares_are_fractions() {
        let (base, prop, sim) = reports();
        for r in [base, prop] {
            let b = analyze(&r, &sim);
            for share in [
                b.engine_share,
                b.sync_share,
                b.memory_share,
                b.frontend_share,
            ] {
                assert!((0.0..=1.0).contains(&share), "share {share}");
            }
        }
    }

    #[test]
    fn proposed_cuts_absolute_memory_and_sync_pressure() {
        let (base, prop, sim) = reports();
        let ab = analyze(&base, &sim);
        let ap = analyze(&prop, &sim);
        // Absolute memory pressure drops by roughly the eliminated
        // per-nonzero loads; sync pressure halves (one move per nonzero
        // instead of two).
        assert!(
            ap.raw[2] < 0.7 * ab.raw[2],
            "memory pressure must drop: {} -> {}",
            ab.raw[2],
            ap.raw[2]
        );
        assert!((ap.raw[1] - ab.raw[1] / 2.0).abs() < 0.05 * ab.raw[1]);
        // Relative engine utilisation rises: the kernel moves toward
        // compute-bound, as the paper argues.
        assert!(
            ap.engine_share > ab.engine_share,
            "engine share must rise: {} -> {}",
            ab.engine_share,
            ap.engine_share
        );
    }

    #[test]
    fn display_and_mix() {
        let (base, _, sim) = reports();
        let b = analyze(&base, &sim);
        let s = b.to_string();
        assert!(s.contains("engine"));
        assert!(s.contains('%'));
        let m = mix_summary(&base);
        assert!(m.contains("MAC"));
    }

    #[test]
    fn zero_cycle_report_does_not_divide_by_zero() {
        let (mut r, _, sim) = reports();
        r.cycles = 0;
        let _ = analyze(&r, &sim);
    }
}
