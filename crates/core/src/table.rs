//! Minimal plain-text table rendering for the bench harnesses, so the
//! figure reproductions print readable, aligned rows without external
//! dependencies.

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use indexmac::table::Table;
///
/// let mut t = Table::new(vec!["layer", "speedup"]);
/// t.row(vec!["conv1".into(), "1.95x".into()]);
/// let s = t.render();
/// assert!(s.contains("conv1"));
/// assert!(s.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, a header rule, and trailing newline.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a speedup as the paper prints it (`1.95x`).
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}x")
}

/// Formats a normalized quantity as a percentage (`52.3%`).
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a baseline/proposed counter pair as the sweep table prints
/// it (`1520 -> 980`), so cycle and instruction columns read as a
/// before/after at a glance.
pub fn fmt_pair(baseline: u64, proposed: u64) -> String {
    format!("{baseline} -> {proposed}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The second column starts at the same offset in every row.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 1], "2");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_speedup(1.9512), "1.95x");
        assert_eq!(fmt_pct(0.523), "52.3%");
        assert_eq!(fmt_pair(1520, 980), "1520 -> 980");
        assert!(Table::new(vec!["x"]).is_empty());
    }
}
