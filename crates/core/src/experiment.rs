//! Experiment drivers: the building blocks of the paper's Figures 4-6.

use indexmac_kernels::{
    dense, indexmac, indexmac2, rowwise, scalar_idx, verify, GemmDims, GemmLayout, KernelParams,
};
use indexmac_models::{GemmCaps, Model, ModelLayer};
use indexmac_sparse::{prune, quant, DenseMatrix, NmPattern, StructuredSparseMatrix};
use indexmac_vpu::{DecodedProgram, RunReport, SimConfig, Simulator, Verified};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// The element precision of an experiment's operands (re-exported from
/// `indexmac-sparse`): `f32` is the paper's configuration; `i8`/`i16`
/// run the widening-MAC quantized datapath with bit-exact verification.
pub use indexmac_sparse::ElemType as Precision;

/// Which kernel to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Paper Algorithm 1: dense row-wise baseline.
    Dense,
    /// Paper Algorithm 2: "Row-Wise-SpMM" (the evaluated baseline).
    RowWiseSpmm,
    /// Paper Algorithm 3: the proposed `vindexmac` kernel.
    IndexMac,
    /// The second-generation `vindexmac.vvi` kernel (arXiv 2501.10189):
    /// index consumed in the vector register file, optional register
    /// grouping via [`ExperimentConfig::lmul`].
    IndexMac2,
    /// Extension: `vindexmac` with scalar-loaded metadata (ablation).
    ScalarIndexed,
}

impl Algorithm {
    /// Every simulatable kernel, for exhaustive sweeps and tests.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Dense,
        Algorithm::RowWiseSpmm,
        Algorithm::IndexMac,
        Algorithm::IndexMac2,
        Algorithm::ScalarIndexed,
    ];
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Dense => write!(f, "Dense"),
            Algorithm::RowWiseSpmm => write!(f, "Row-Wise-SpMM"),
            Algorithm::IndexMac => write!(f, "Proposed (vindexmac)"),
            Algorithm::IndexMac2 => write!(f, "Proposed-2 (vindexmac.vvi)"),
            Algorithm::ScalarIndexed => write!(f, "Scalar-indexed vindexmac"),
        }
    }
}

/// Shared configuration of one experimental campaign.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Processor model (Table I by default).
    pub sim: SimConfig,
    /// GEMM size caps (see EXPERIMENTS.md for why capping is sound).
    pub caps: GemmCaps,
    /// B-tile rows kept resident (`L`; the paper uses 16). For
    /// [`Algorithm::IndexMac2`] with `lmul > 1` the value is re-fitted
    /// to the grouped register budget via
    /// [`GemmLayout::fit_tile_rows`].
    pub tile_rows: usize,
    /// Register grouping for [`Algorithm::IndexMac2`] (`1`, `2` or
    /// `4`; every other kernel always runs ungrouped).
    pub lmul: usize,
    /// Element precision of A and B ([`Precision::F32`] by default).
    /// The quantized precisions select SEW e8/e16 (`vl = LMUL·VLEN/SEW`),
    /// run only the `vindexmac` kernels, and verify bit-exactly against
    /// the i32 reference.
    pub precision: Precision,
    /// Kernel tunables (unroll x4, B-stationary by default). The unroll
    /// factor is clamped to the grouped register budget for
    /// [`Algorithm::IndexMac2`].
    pub params: KernelParams,
    /// Seed for operand generation.
    pub seed: u64,
    /// Runaway-program guard: the largest dynamic instruction count a
    /// single simulation may retire before failing with
    /// `SimError::InstructionLimit`. Tunable from the CLI via
    /// `--max-instructions`; the default is the simulator's own
    /// [`indexmac_vpu::sim::DEFAULT_MAX_INSTRUCTIONS`].
    pub max_instructions: u64,
    /// Whether to verify every simulated product against the reference
    /// (cheap insurance; on by default).
    pub verify: bool,
    /// The kernel measured as the comparison baseline
    /// ([`Algorithm::RowWiseSpmm`] by default, as in the paper).
    pub baseline: Algorithm,
    /// The kernel measured as the proposed side
    /// ([`Algorithm::IndexMac`] by default; set
    /// [`Algorithm::IndexMac2`] to reproduce the follow-up numbers).
    pub proposed: Algorithm,
    /// When `Some(n)`, every timed kernel run is re-executed through the
    /// sharded counting engine ([`Simulator::run_sharded`]) with shard
    /// size `n` and refereed against the timed report: instruction
    /// counts, per-class counts, program-issued traffic and the result
    /// matrix must match bit-for-bit. `None` (the default) skips the
    /// cross-check. Tunable from the CLI via `--shard-size`.
    pub shard_size: Option<u64>,
}

impl ExperimentConfig {
    /// The paper's evaluation configuration with the default caps.
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::table_i(),
            caps: GemmCaps::default_eval(),
            tile_rows: 16,
            lmul: 1,
            precision: Precision::F32,
            params: KernelParams::default(),
            seed: 0xD47E_2024,
            max_instructions: indexmac_vpu::sim::DEFAULT_MAX_INSTRUCTIONS,
            verify: true,
            baseline: Algorithm::RowWiseSpmm,
            proposed: Algorithm::IndexMac,
            shard_size: None,
        }
    }

    /// The transformer-campaign defaults: the second-generation
    /// `vindexmac.vvi` kernel under `m2` register grouping against the
    /// first generation — the configuration of the follow-up work
    /// (arXiv 2501.10189) on DNN GEMM shapes, and what the CLI `model`
    /// command runs for transformer presets. Quantized presets clamp
    /// the grouping to the widening budget (see [`compare_model`]).
    pub fn transformer() -> Self {
        Self::second_generation(2)
    }

    /// A quantized campaign at `precision`: both comparison sides run
    /// the `vindexmac` kernels (the walk-based baselines are f32-only),
    /// with `vindexmac.vx` as the baseline and `vindexmac.vvi` proposed.
    pub fn quantized(precision: Precision) -> Self {
        Self {
            precision,
            baseline: Algorithm::IndexMac,
            proposed: Algorithm::IndexMac2,
            ..Self::paper()
        }
    }

    /// Small caps for unit tests and doc examples.
    pub fn fast() -> Self {
        Self {
            caps: GemmCaps::smoke(),
            ..Self::paper()
        }
    }

    /// Paper config comparing the second-generation kernel against
    /// Algorithm 3 under `lmul` register grouping.
    pub fn second_generation(lmul: usize) -> Self {
        Self {
            lmul,
            baseline: Algorithm::IndexMac,
            proposed: Algorithm::IndexMac2,
            ..Self::paper()
        }
    }

    /// Same campaign under a different timing backend — both comparison
    /// sides (and every sweep cell) run on `timing`; the architectural
    /// results and instret are backend-invariant by construction.
    #[must_use]
    pub fn with_timing(mut self, timing: indexmac_vpu::TimingKind) -> Self {
        self.sim = self.sim.with_timing(timing);
        self
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Result of simulating one kernel on one (possibly capped) GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// The kernel simulated.
    pub algorithm: Algorithm,
    /// Sparsity pattern of A.
    pub pattern: NmPattern,
    /// The simulated (capped) GEMM shape.
    pub gemm: GemmDims,
    /// The uncapped shape this stands for.
    pub full_gemm: GemmDims,
    /// Timing and traffic measurements.
    pub report: RunReport,
}

/// Experiment-level errors.
#[derive(Debug)]
pub enum ExperimentError {
    /// Kernel construction failed.
    Kernel(indexmac_kernels::KernelError),
    /// Simulation or verification failed.
    Verify(verify::VerifyError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Kernel(e) => write!(f, "kernel construction failed: {e}"),
            ExperimentError::Verify(e) => write!(f, "kernel execution failed: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Kernel(e) => Some(e),
            ExperimentError::Verify(e) => Some(e),
        }
    }
}

impl From<indexmac_kernels::KernelError> for ExperimentError {
    fn from(e: indexmac_kernels::KernelError) -> Self {
        ExperimentError::Kernel(e)
    }
}

impl From<verify::VerifyError> for ExperimentError {
    fn from(e: verify::VerifyError) -> Self {
        ExperimentError::Verify(e)
    }
}

/// Generates the seeded operands for a GEMM shape at the campaign
/// precision: uniform f32, or full-range exact integers for i8/i16.
fn operands(
    dims: GemmDims,
    pattern: NmPattern,
    seed: u64,
    precision: Precision,
) -> (StructuredSparseMatrix, DenseMatrix) {
    if precision.is_int() {
        let a = quant::random_structured_int(dims.rows, dims.inner, pattern, seed, precision);
        let b = quant::random_dense_int(dims.inner, dims.cols, seed.wrapping_add(1), precision);
        (a, b)
    } else {
        let a = prune::random_structured(dims.rows, dims.inner, pattern, seed);
        let b = DenseMatrix::random(dims.inner, dims.cols, seed.wrapping_add(1));
        (a, b)
    }
}

/// Plans the layout and the *effective* kernel parameters for one
/// `(algorithm, shape)` pair: the grouped second-generation layout
/// shrinks `L` to the grouped register budget, and both `vindexmac`
/// kernels clamp a too-large unroll to their accumulator budget (zero
/// still flows through so it is rejected as `BadUnroll`).
fn plan_kernel(
    algorithm: Algorithm,
    a: &StructuredSparseMatrix,
    cols: usize,
    cfg: &ExperimentConfig,
) -> Result<(GemmLayout, KernelParams), ExperimentError> {
    if algorithm == Algorithm::IndexMac2 {
        let pattern = a.pattern();
        let tile_rows = GemmLayout::fit_tile_rows(cfg.tile_rows, cfg.lmul, pattern);
        let layout = GemmLayout::plan_elem(a, cols, &cfg.sim, tile_rows, cfg.lmul, cfg.precision)?;
        let params = KernelParams {
            unroll: cfg.params.unroll.min(indexmac2::max_unroll(&layout)),
            ..cfg.params
        };
        Ok((layout, params))
    } else {
        let layout = GemmLayout::plan_elem(a, cols, &cfg.sim, cfg.tile_rows, 1, cfg.precision)?;
        let params = if algorithm == Algorithm::IndexMac {
            // The widening accumulator shrinks Algorithm 3's unroll
            // budget; the f32 budget is unchanged.
            KernelParams {
                unroll: cfg.params.unroll.min(indexmac::max_unroll(&layout)),
                ..cfg.params
            }
        } else {
            cfg.params
        };
        Ok((layout, params))
    }
}

/// Builds the kernel program for a planned layout (cache-miss path of
/// the [`ProgramCache`]).
fn build_kernel(
    algorithm: Algorithm,
    layout: &GemmLayout,
    params: &KernelParams,
) -> Result<indexmac_isa::Program, ExperimentError> {
    Ok(match algorithm {
        Algorithm::Dense => dense::build(layout, params)?,
        Algorithm::RowWiseSpmm => rowwise::build(layout, params)?,
        Algorithm::IndexMac => indexmac::build(layout, params)?,
        Algorithm::IndexMac2 => indexmac2::build(layout, params)?,
        Algorithm::ScalarIndexed => scalar_idx::build(layout, params)?,
    })
}

/// Hit/miss statistics of the per-thread decode-once kernel cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from an already-built, already-decoded kernel.
    pub hits: u64,
    /// Lookups that had to build + decode a kernel.
    pub misses: u64,
    /// Cached programs evicted to respect the size budget.
    pub evictions: u64,
    /// Decoded programs currently resident.
    pub entries: usize,
}

impl fmt::Display for DecodeCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} resident programs ({} evicted)",
            self.hits, self.misses, self.entries, self.evictions
        )
    }
}

/// Decode-once kernel cache: maps `(algorithm, layout, params)` — which
/// fully determine a kernel program, since builders are pure functions
/// of the layout geometry — to a predecoded [`DecodedProgram`]. Sweeps
/// repeat one shape across many seeds, and transformer stacks repeat
/// one block geometry across layers; both now decode each distinct
/// kernel exactly once per worker thread.
struct ProgramCache {
    entries: VecDeque<(Algorithm, GemmLayout, KernelParams, CachedKernel)>,
    resident_uops: usize,
    max_uops: usize,
    stats: DecodeCacheStats,
}

/// A cached predecoded kernel together with its static-analysis token.
/// Shipped builders always analyze clean, so `token` is `Some` in
/// practice and runs take the check-elided fast path; `None` falls
/// back to the fully checked engine.
#[derive(Clone)]
struct CachedKernel {
    program: Rc<DecodedProgram>,
    token: Option<Verified>,
}

/// Bound on the total static instructions the cache may keep resident
/// **per worker thread** (each entry holds a µop and an instruction
/// per slot, ~32 bytes). Fully-unrolled full-scale kernels run to
/// millions of instructions, so the bound is on µops, not entry
/// count: evaluation-cap-sized kernels (tens of thousands of µops)
/// effectively never evict, ~64 MiB of them can accumulate per
/// thread, and an oversized full-profile kernel is retained only
/// until the next insertion evicts it (the entry just inserted is
/// never evicted — it is needed for the run in flight).
const PROGRAM_CACHE_MAX_UOPS: usize = 2 << 20;

impl ProgramCache {
    fn new() -> Self {
        Self {
            entries: VecDeque::new(),
            resident_uops: 0,
            max_uops: PROGRAM_CACHE_MAX_UOPS,
            stats: DecodeCacheStats::default(),
        }
    }

    fn get_or_build(
        &mut self,
        algorithm: Algorithm,
        layout: &GemmLayout,
        params: &KernelParams,
    ) -> Result<CachedKernel, ExperimentError> {
        if let Some((.., cached)) = self
            .entries
            .iter()
            .find(|(alg, l, p, _)| *alg == algorithm && l == layout && p == params)
        {
            self.stats.hits += 1;
            self.stats.entries = self.entries.len();
            return Ok(cached.clone());
        }
        self.stats.misses += 1;
        let program = Rc::new(DecodedProgram::decode(&build_kernel(
            algorithm, layout, params,
        )?));
        // Analyze once at build time, alongside the one-time decode:
        // every subsequent run of this cached kernel executes with the
        // per-µop fault checks elided.
        let vlen_bits = layout.vl * layout.elem.bits();
        let token = indexmac_vpu::analyze_with_contract(
            &program,
            vlen_bits,
            Some(&layout.analysis_contract()),
        )
        .verified();
        debug_assert!(token.is_some(), "shipped kernels must analyze clean");
        let cached = CachedKernel { program, token };
        self.resident_uops += cached.program.len();
        self.entries
            .push_back((algorithm, layout.clone(), *params, cached.clone()));
        // FIFO eviction down to the µop budget (never evicting the
        // entry just inserted).
        while self.resident_uops > self.max_uops && self.entries.len() > 1 {
            let (.., evicted) = self.entries.pop_front().expect("len > 1");
            self.resident_uops -= evicted.program.len();
            self.stats.evictions += 1;
        }
        self.stats.entries = self.entries.len();
        Ok(cached)
    }
}

/// Per-thread warm-execution context: one reusable [`Simulator`] (reset
/// in place between runs — no fresh `ArchState`/`MainMemory` allocation
/// per cell) plus the decode-once [`ProgramCache`]. Every worker thread
/// of a rayon sweep gets its own.
struct ExecContext {
    sim: Option<Simulator>,
    cache: ProgramCache,
}

impl ExecContext {
    /// The reusable simulator, reset and configured for this run. A
    /// changed `SimConfig` (e.g. the VLEN ablation) rebuilds it.
    fn simulator(&mut self, cfg: &SimConfig, max_instructions: u64) -> &mut Simulator {
        let rebuild = !matches!(&self.sim, Some(s) if s.config() == cfg);
        if rebuild {
            self.sim = Some(Simulator::new(*cfg));
        }
        let sim = self.sim.as_mut().expect("simulator just ensured");
        sim.set_max_instructions(max_instructions);
        sim
    }
}

thread_local! {
    static EXEC_CTX: RefCell<ExecContext> = RefCell::new(ExecContext {
        sim: None,
        cache: ProgramCache::new(),
    });
}

/// This thread's decode-once kernel-cache statistics (each rayon worker
/// accumulates its own; the CLI `model` command runs on one thread, so
/// its printout covers the whole command).
pub fn decode_cache_stats() -> DecodeCacheStats {
    EXEC_CTX.with(|ctx| ctx.borrow().cache.stats)
}

/// Drops this thread's cached programs and zeroes the statistics
/// (mainly for tests that assert on hit counts).
pub fn reset_decode_cache() {
    EXEC_CTX.with(|ctx| ctx.borrow_mut().cache = ProgramCache::new());
}

/// Simulates `algorithm` on a GEMM of shape `dims` (caps applied).
///
/// Runs through the per-thread warm context: the kernel program is
/// built and predecoded at most once per `(algorithm, layout, params)`
/// and the simulator is reused across calls via in-place reset, so
/// sweeping one shape over many seeds pays the decode cost once.
/// Results are bit-identical to a cold per-call simulator.
///
/// # Errors
///
/// Returns [`ExperimentError`] on kernel-construction or simulation
/// failures (both indicate configuration bugs, not data conditions).
pub fn run_gemm(
    dims: GemmDims,
    pattern: NmPattern,
    algorithm: Algorithm,
    cfg: &ExperimentConfig,
) -> Result<LayerResult, ExperimentError> {
    let capped = cfg.caps.apply(dims);
    let (a, b) = operands(capped, pattern, cfg.seed, cfg.precision);
    let (layout, params) = plan_kernel(algorithm, &a, capped.cols, cfg)?;
    let run = EXEC_CTX.with(|ctx| {
        let ctx = &mut *ctx.borrow_mut();
        let kernel = ctx.cache.get_or_build(algorithm, &layout, &params)?;
        let sim = ctx.simulator(&cfg.sim, cfg.max_instructions);
        let run = match kernel.token {
            Some(token) => {
                verify::run_decoded_kernel_verified(sim, &kernel.program, token, &a, &b, &layout)?
            }
            None => verify::run_decoded_kernel(sim, &kernel.program, &a, &b, &layout)?,
        };
        if cfg.verify && algorithm != Algorithm::Dense {
            if layout.elem.is_int() {
                verify::check_int_exact(&run, &a, &b)?;
            } else {
                verify::check_against_reference(
                    &run,
                    &a,
                    &b,
                    verify::default_tolerance(layout.dims.inner),
                )?;
            }
        }
        if let Some(shard_size) = cfg.shard_size {
            // Differential referee: replay the run through the sharded
            // counting engine and demand bit-identical architectural
            // results and event counts. Sequential metrics (cycles,
            // stalls, hit rates, DRAM lines) are zero on the counting
            // side and deliberately not compared.
            let (sharded, _shards) = verify::run_decoded_kernel_sharded(
                sim,
                &kernel.program,
                kernel.token,
                &a,
                &b,
                &layout,
                shard_size,
            )?;
            assert_eq!(
                sharded.report.instructions, run.report.instructions,
                "sharded replay retired a different instruction count"
            );
            assert_eq!(
                sharded.report.counts, run.report.counts,
                "sharded replay produced different per-class counts"
            );
            assert_eq!(
                sharded.report.v2s_syncs, run.report.v2s_syncs,
                "sharded replay produced different v2s sync counts"
            );
            for (name, got, want) in [
                (
                    "scalar_loads",
                    sharded.report.mem.scalar_loads,
                    run.report.mem.scalar_loads,
                ),
                (
                    "scalar_stores",
                    sharded.report.mem.scalar_stores,
                    run.report.mem.scalar_stores,
                ),
                (
                    "vector_loads",
                    sharded.report.mem.vector_loads,
                    run.report.mem.vector_loads,
                ),
                (
                    "vector_stores",
                    sharded.report.mem.vector_stores,
                    run.report.mem.vector_stores,
                ),
            ] {
                assert_eq!(got, want, "sharded replay diverged on {name}");
            }
            assert_eq!(
                sharded.c.as_slice(),
                run.c.as_slice(),
                "sharded replay computed a different product"
            );
            assert_eq!(
                sharded.c_int.is_some(),
                run.c_int.is_some(),
                "sharded replay disagreed on precision"
            );
            if let (Some(si), Some(ri)) = (&sharded.c_int, &run.c_int) {
                assert!(
                    si.first_mismatch(ri).is_none(),
                    "sharded replay computed a different integer product"
                );
            }
        }
        Ok::<_, ExperimentError>(run)
    })?;
    Ok(LayerResult {
        algorithm,
        pattern,
        gemm: capped,
        full_gemm: dims,
        report: run.report,
    })
}

/// One statically linted kernel configuration: the planned geometry
/// plus every diagnostic the µop-program analyzer produced for it.
#[derive(Debug, Clone)]
pub struct LintResult {
    /// The kernel linted.
    pub algorithm: Algorithm,
    /// Sparsity pattern the layout was planned for.
    pub pattern: NmPattern,
    /// The (capped) GEMM shape the kernel was built for.
    pub gemm: GemmDims,
    /// Element precision of the layout.
    pub precision: Precision,
    /// Register grouping of the layout.
    pub lmul: usize,
    /// Static program length in instructions.
    pub static_instructions: usize,
    /// Whether the analysis minted a check-elision token (zero errors).
    pub verified: bool,
    /// Every finding, ordered by pc.
    pub diagnostics: Vec<indexmac_vpu::Diagnostic>,
}

/// Builds the kernel for `(algorithm, shape, cfg)` exactly as
/// [`run_gemm`] would and runs the static µop-program analyzer over it
/// against the layout's memory contract — without simulating anything.
/// This is the CLI `lint` subcommand's engine and what the CI lint job
/// sweeps over every shipped kernel configuration.
///
/// # Errors
///
/// Returns [`ExperimentError::Kernel`] when the configuration cannot be
/// planned or built (the lint target must exist to be linted).
pub fn lint_gemm(
    dims: GemmDims,
    pattern: NmPattern,
    algorithm: Algorithm,
    cfg: &ExperimentConfig,
) -> Result<LintResult, ExperimentError> {
    let capped = cfg.caps.apply(dims);
    let (a, _) = operands(capped, pattern, cfg.seed, cfg.precision);
    let (layout, params) = plan_kernel(algorithm, &a, capped.cols, cfg)?;
    let program = build_kernel(algorithm, &layout, &params)?;
    let decoded = DecodedProgram::decode(&program);
    let analysis = verify::analyze_kernel(&decoded, &layout, &cfg.sim);
    Ok(LintResult {
        algorithm,
        pattern,
        gemm: capped,
        precision: cfg.precision,
        lmul: layout.lmul,
        static_instructions: program.len(),
        verified: analysis.verified().is_some(),
        diagnostics: analysis.diagnostics().to_vec(),
    })
}

/// Baseline-vs-proposed comparison on one GEMM shape. Which kernels the
/// two sides run comes from [`ExperimentConfig::baseline`] /
/// [`ExperimentConfig::proposed`] (Row-Wise-SpMM vs `vindexmac.vx` by
/// default, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct GemmComparison {
    /// Baseline-kernel measurements.
    pub baseline: LayerResult,
    /// Proposed-kernel measurements.
    pub proposed: LayerResult,
}

impl GemmComparison {
    /// Fig. 4/5 metric: baseline cycles / proposed cycles.
    pub fn speedup(&self) -> f64 {
        self.proposed.report.speedup_over(&self.baseline.report)
    }

    /// Fig. 6 metric: proposed memory accesses / baseline's.
    pub fn mem_ratio(&self) -> f64 {
        self.proposed
            .report
            .normalized_mem_accesses(&self.baseline.report)
    }
}

/// Runs both kernels on the same operands (paper Fig. 4 per-layer bar).
///
/// # Errors
///
/// See [`run_gemm`].
pub fn compare_gemm(
    dims: GemmDims,
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<GemmComparison, ExperimentError> {
    Ok(GemmComparison {
        baseline: run_gemm(dims, pattern, cfg.baseline, cfg)?,
        proposed: run_gemm(dims, pattern, cfg.proposed, cfg)?,
    })
}

/// Per-layer comparison (adds the layer name).
#[derive(Debug, Clone)]
pub struct LayerComparison {
    /// The layer's name in the network.
    pub name: String,
    /// The two-kernel comparison on its (capped) GEMM.
    pub comparison: GemmComparison,
}

/// Runs both kernels on a model layer's lowered GEMM (a CNN layer's
/// im2col product, a transformer projection, ...).
///
/// # Errors
///
/// See [`run_gemm`].
pub fn compare_layer(
    layer: &ModelLayer,
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<LayerComparison, ExperimentError> {
    Ok(LayerComparison {
        name: layer.name.clone(),
        comparison: compare_gemm(layer.gemm, pattern, cfg)?,
    })
}

/// Whole-network comparison: every GEMM layer of a model.
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// Model name.
    pub model: String,
    /// Sparsity pattern of the weights.
    pub pattern: NmPattern,
    /// Element precision every layer actually simulated at (the model's
    /// own precision — quantized presets run the e8/e16 datapath even
    /// under an f32-configured campaign).
    pub precision: Precision,
    /// Per-layer results, in network order.
    pub layers: Vec<LayerComparison>,
}

impl ModelComparison {
    /// Total-network speedup (paper Fig. 5): summed baseline cycles over
    /// summed proposed cycles.
    pub fn total_speedup(&self) -> f64 {
        let base: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.baseline.report.cycles)
            .sum();
        let prop: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.proposed.report.cycles)
            .sum();
        base as f64 / prop as f64
    }

    /// Total normalized memory accesses (paper Fig. 6).
    pub fn total_mem_ratio(&self) -> f64 {
        let base: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.baseline.report.mem.total_accesses())
            .sum();
        let prop: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.proposed.report.mem.total_accesses())
            .sum();
        prop as f64 / base as f64
    }

    /// Range of per-layer speedups `(min, max)`.
    pub fn speedup_range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = 0.0_f64;
        for l in &self.layers {
            let s = l.comparison.speedup();
            min = min.min(s);
            max = max.max(s);
        }
        (min, max)
    }
}

/// Reconciles a campaign configuration with a model's own precision:
/// quantized presets must simulate the quantized datapath even when the
/// caller passes an f32-default configuration, integer precisions force
/// the comparison onto the `vindexmac` kernel pair (the walk-based
/// baselines have no quantized emission path), and register grouping is
/// clamped to the widening budget (`lmul · 32/SEW ≤ 4`, so e8 runs
/// ungrouped and e16 at most `m2` — the accumulator group would
/// otherwise exceed `m4`).
fn config_for_model(model: &Model, cfg: &ExperimentConfig) -> ExperimentConfig {
    let mut out = ExperimentConfig {
        precision: model.precision,
        ..*cfg
    };
    if model.precision.is_int() {
        out.lmul = out.lmul.min(4 / model.precision.widen()).max(1);
        let int_capable = |a: Algorithm| matches!(a, Algorithm::IndexMac | Algorithm::IndexMac2);
        if !(int_capable(out.baseline) && int_capable(out.proposed) && out.baseline != out.proposed)
        {
            // The configured pair cannot run (or degenerates) at an
            // integer precision: use the standard quantized comparison,
            // vx vs vvi.
            out.baseline = Algorithm::IndexMac;
            out.proposed = Algorithm::IndexMac2;
        }
    }
    out
}

/// Runs the full per-layer comparison for one model (paper Fig. 4 for
/// ResNet50; summed for Fig. 5/6; per-block tables for the transformer
/// presets). The model's own precision wins over `cfg.precision` — an
/// int8 preset always runs the e8 datapath, with the comparison sides
/// moved onto the `vindexmac` pair if the configured kernels have no
/// quantized path and the register grouping clamped to the widening
/// budget.
///
/// Identical GEMM shapes (every block of a transformer stack repeats
/// one geometry) are simulated **once** and their results replicated:
/// operand generation is seeded purely by the campaign seed and shape,
/// so the per-layer reports are bit-identical to the naive loop.
///
/// # Errors
///
/// See [`run_gemm`]. Fails on the first failing layer.
pub fn compare_model(
    model: &Model,
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<ModelComparison, ExperimentError> {
    let cfg = config_for_model(model, cfg);
    let mut cache: Vec<(GemmDims, GemmComparison)> = Vec::new();
    let mut layers = Vec::with_capacity(model.layers.len());
    for layer in &model.layers {
        let hit = cache.iter().find(|(g, _)| *g == layer.gemm);
        let comparison = match hit {
            Some((_, c)) => c.clone(),
            None => {
                let c = compare_gemm(layer.gemm, pattern, &cfg)?;
                cache.push((layer.gemm, c.clone()));
                c
            }
        };
        layers.push(LayerComparison {
            name: layer.name.clone(),
            comparison,
        });
    }
    Ok(ModelComparison {
        model: model.name.clone(),
        pattern,
        precision: cfg.precision,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::fast()
    }

    #[test]
    fn run_gemm_all_algorithms() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        for alg in Algorithm::ALL {
            let r = run_gemm(dims, NmPattern::P1_4, alg, &cfg()).unwrap();
            assert!(r.report.cycles > 0, "{alg}");
            assert_eq!(r.gemm.rows, 8);
        }
    }

    #[test]
    fn indexmac2_beats_indexmac_on_cycles_and_instructions() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let v1 = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac, &cfg()).unwrap();
        let v2 = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac2, &cfg()).unwrap();
        assert!(
            v2.report.cycles < v1.report.cycles,
            "vvi {} vs vx {}",
            v2.report.cycles,
            v1.report.cycles
        );
        assert!(v2.report.instructions < v1.report.instructions);
    }

    #[test]
    fn second_generation_config_compares_the_two_indexmacs() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::second_generation(1)
        };
        let c = compare_gemm(dims, NmPattern::P1_4, &cfg).unwrap();
        assert_eq!(c.baseline.algorithm, Algorithm::IndexMac);
        assert_eq!(c.proposed.algorithm, Algorithm::IndexMac2);
        assert!(c.speedup() > 1.0, "speedup {}", c.speedup());
    }

    #[test]
    fn grouped_indexmac2_runs_and_verifies() {
        let dims = GemmDims {
            rows: 16,
            inner: 64,
            cols: 64,
        };
        for lmul in [2, 4] {
            let cfg = ExperimentConfig {
                lmul,
                caps: indexmac_models::GemmCaps::smoke(),
                ..ExperimentConfig::paper()
            };
            let r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &cfg).unwrap();
            assert!(r.report.cycles > 0, "lmul {lmul}");
        }
    }

    #[test]
    fn caps_are_applied_and_recorded() {
        let dims = GemmDims {
            rows: 100,
            inner: 1000,
            cols: 1000,
        };
        let r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &cfg()).unwrap();
        assert_eq!(r.full_gemm, dims);
        assert_eq!(r.gemm.rows, 16);
        assert_eq!(r.gemm.inner, 128);
        assert_eq!(r.gemm.cols, 32);
    }

    #[test]
    fn comparison_shows_speedup_and_traffic_cut() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let c = compare_gemm(dims, NmPattern::P1_4, &cfg()).unwrap();
        assert!(c.speedup() > 1.2, "speedup {}", c.speedup());
        assert!(c.mem_ratio() < 0.8, "mem ratio {}", c.mem_ratio());
    }

    #[test]
    fn sparse_beats_dense_by_mac_reduction() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let dense_r = run_gemm(dims, NmPattern::P1_4, Algorithm::Dense, &cfg()).unwrap();
        let sparse_r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &cfg()).unwrap();
        // 1:4 structured sparsity skips 3/4 of the MACs; expect a clear win.
        assert!(
            sparse_r.report.cycles * 2 < dense_r.report.cycles,
            "sparse {} vs dense {}",
            sparse_r.report.cycles,
            dense_r.report.cycles
        );
    }

    #[test]
    fn model_comparison_on_a_few_layers() {
        let tiny = indexmac_models::resnet50().head(3);
        let c = compare_model(&tiny, NmPattern::P2_4, &cfg()).unwrap();
        assert_eq!(c.layers.len(), 3);
        assert!(c.total_speedup() > 1.0);
        assert!(c.total_mem_ratio() < 1.0);
        let (lo, hi) = c.speedup_range();
        assert!(lo <= hi);
    }

    #[test]
    fn quantized_run_gemm_is_bit_exact_and_runs_both_kernels() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        for precision in [Precision::I8, Precision::I16] {
            let cfg = ExperimentConfig {
                caps: indexmac_models::GemmCaps::smoke(),
                ..ExperimentConfig::quantized(precision)
            };
            // verify=true routes through the exact integer checker.
            assert!(cfg.verify);
            let c = compare_gemm(dims, NmPattern::P1_4, &cfg).unwrap();
            assert_eq!(c.baseline.algorithm, Algorithm::IndexMac);
            assert_eq!(c.proposed.algorithm, Algorithm::IndexMac2);
            assert!(c.proposed.report.cycles > 0, "{precision}");
        }
    }

    #[test]
    fn quantized_rejects_float_only_kernels() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::quantized(Precision::I8)
        };
        for alg in [
            Algorithm::Dense,
            Algorithm::RowWiseSpmm,
            Algorithm::ScalarIndexed,
        ] {
            let err = run_gemm(dims, NmPattern::P1_4, alg, &cfg).unwrap_err();
            assert!(matches!(err, ExperimentError::Kernel(_)), "{alg}: {err}");
        }
    }

    #[test]
    fn e8_beats_e32_at_the_acceptance_shape() {
        // Acceptance criterion: at 64x256x128 / 1:4, e8 IndexMAC2
        // reports fewer cycles and fewer dynamic vector instructions
        // than e32 with the same algorithm, with >= 2x fewer vector
        // instructions in steady state.
        let dims = GemmDims {
            rows: 64,
            inner: 256,
            cols: 128,
        };
        let e32_cfg = ExperimentConfig::paper();
        assert!(
            !e32_cfg.caps.clips(dims),
            "acceptance shape must run uncapped"
        );
        let e32 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &e32_cfg).unwrap();
        let e8_cfg = ExperimentConfig::quantized(Precision::I8);
        let e8 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &e8_cfg).unwrap();
        assert!(
            e8.report.cycles < e32.report.cycles,
            "e8 {} cycles vs e32 {}",
            e8.report.cycles,
            e32.report.cycles
        );
        assert!(
            e8.report.counts.vector_total() * 2 <= e32.report.counts.vector_total(),
            "e8 {} vector instructions vs e32 {}",
            e8.report.counts.vector_total(),
            e32.report.counts.vector_total()
        );
        assert!(e8.report.instructions < e32.report.instructions);
    }

    #[test]
    fn quantized_grouped_e16_runs() {
        // e16 supports m2 (widen 2 x lmul 2 = the m4 accumulator cap).
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 64,
        };
        let cfg = ExperimentConfig {
            lmul: 2,
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::quantized(Precision::I16)
        };
        let r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &cfg).unwrap();
        assert!(r.report.cycles > 0);
        // e8 with grouping exceeds the accumulator cap and is rejected.
        let bad = ExperimentConfig {
            lmul: 2,
            ..ExperimentConfig::quantized(Precision::I8)
        };
        assert!(run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &bad).is_err());
    }

    #[test]
    fn compare_model_honours_the_models_precision() {
        // An int8 preset under a default f32 campaign must simulate the
        // e8 datapath with the vindexmac kernel pair — not silently run
        // f32 under an "-int8" label.
        let full = indexmac_models::resnet50_int8();
        let tiny = full.head(2);
        let c = compare_model(&tiny, NmPattern::P1_4, &cfg()).unwrap();
        assert_eq!(c.precision, Precision::I8);
        for l in &c.layers {
            assert_eq!(l.comparison.baseline.algorithm, Algorithm::IndexMac);
            assert_eq!(l.comparison.proposed.algorithm, Algorithm::IndexMac2);
        }
        // And an f32 model under an f32 campaign is untouched.
        let f = compare_model(
            &indexmac_models::resnet50().head(1),
            NmPattern::P1_4,
            &cfg(),
        )
        .unwrap();
        assert_eq!(f.precision, Precision::F32);
        assert_eq!(
            f.layers[0].comparison.baseline.algorithm,
            Algorithm::RowWiseSpmm
        );
    }

    #[test]
    fn transformer_config_pairs_the_two_generations_under_m2() {
        let cfg = ExperimentConfig::transformer();
        assert_eq!(cfg.baseline, Algorithm::IndexMac);
        assert_eq!(cfg.proposed, Algorithm::IndexMac2);
        assert_eq!(cfg.lmul, 2);
        assert_eq!(cfg.precision, Precision::F32);
    }

    #[test]
    fn compare_model_clamps_grouping_for_quantized_presets() {
        // The transformer campaign runs m2, but e8 widens 4×: grouping
        // must clamp to m1 instead of erroring (and e16 may keep m2).
        let bert = indexmac_models::bert_base_int8().head(1);
        let cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::transformer()
        };
        let c = compare_model(&bert, NmPattern::P2_4, &cfg).unwrap();
        assert_eq!(c.precision, Precision::I8);
        assert!(c.layers[0].comparison.proposed.report.cycles > 0);
        let i16_model = indexmac_models::bert_base()
            .head(1)
            .with_precision("BERT-base-i16-head", Precision::I16);
        assert!(compare_model(&i16_model, NmPattern::P2_4, &cfg).is_ok());
    }

    #[test]
    fn compare_model_dedupes_repeated_shapes_bit_identically() {
        // Transformer blocks repeat one geometry; the deduped driver
        // must return exactly what a naive per-layer loop returns.
        let model = indexmac_models::bert_base().head(8); // spans 2 blocks
        let cfg = cfg();
        let c = compare_model(&model, NmPattern::P1_4, &cfg).unwrap();
        assert_eq!(c.layers.len(), 8);
        for (layer, result) in model.layers.iter().zip(&c.layers) {
            let manual = compare_gemm(layer.gemm, NmPattern::P1_4, &cfg).unwrap();
            assert_eq!(result.comparison.baseline.report, manual.baseline.report);
            assert_eq!(result.comparison.proposed.report, manual.proposed.report);
        }
        // Layers 0 (block0.attn.q) and 6 (block1.attn.q) share a shape.
        assert_eq!(
            c.layers[0].comparison.proposed.report,
            c.layers[6].comparison.proposed.report
        );
    }

    #[test]
    fn decode_cache_hits_repeated_shapes_across_seeds() {
        // The transformer/sweep pattern: one shape, many seeds. The
        // program depends only on (algorithm, layout, params), so every
        // run after the first must be a decode-cache hit — with results
        // identical to what a cold simulator produces.
        reset_decode_cache();
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let mut reports = Vec::new();
        for seed in 0..4u64 {
            let cfg = ExperimentConfig {
                seed,
                ..ExperimentConfig::fast()
            };
            reports.push(
                run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &cfg)
                    .unwrap()
                    .report,
            );
        }
        let stats = decode_cache_stats();
        assert_eq!(stats.misses, 1, "one build+decode for four runs");
        assert_eq!(stats.hits, 3, "seeds 1..3 reuse the decoded kernel");
        assert_eq!(stats.entries, 1);
        // Different seeds still produce different dynamics? No — the
        // program (and instruction count) is seed-independent; only the
        // data changes. Cycles may coincide, but the run must be real:
        assert!(reports.iter().all(|r| r.cycles > 0));
        // A different pattern is a different layout -> new entry.
        run_gemm(
            dims,
            NmPattern::P2_4,
            Algorithm::IndexMac2,
            &ExperimentConfig::fast(),
        )
        .unwrap();
        assert_eq!(decode_cache_stats().misses, 2);
    }

    #[test]
    fn warm_context_is_bit_identical_across_config_switches() {
        // Alternating configurations through the shared thread-local
        // simulator must not leak state between runs.
        reset_decode_cache();
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let f32_cfg = ExperimentConfig::fast();
        let e8_cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::quantized(Precision::I8)
        };
        let first_f32 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &f32_cfg).unwrap();
        let first_e8 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &e8_cfg).unwrap();
        let again_f32 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &f32_cfg).unwrap();
        let again_e8 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &e8_cfg).unwrap();
        assert_eq!(first_f32.report, again_f32.report);
        assert_eq!(first_e8.report, again_e8.report);
    }

    #[test]
    fn max_instructions_guard_is_tunable() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let tight = ExperimentConfig {
            max_instructions: 10,
            ..ExperimentConfig::fast()
        };
        let err = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &tight).unwrap_err();
        assert!(
            err.to_string().contains("instruction limit"),
            "tight guard must trip: {err}"
        );
        // The default guard is untouched by the tight run before it.
        assert!(run_gemm(
            dims,
            NmPattern::P1_4,
            Algorithm::IndexMac,
            &ExperimentConfig::fast()
        )
        .is_ok());
    }

    #[test]
    fn results_are_deterministic() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let a = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac, &cfg()).unwrap();
        let b = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac, &cfg()).unwrap();
        assert_eq!(a.report.cycles, b.report.cycles);
        assert_eq!(a.report.mem.total_accesses(), b.report.mem.total_accesses());
    }

    #[test]
    fn program_cache_fifo_eviction_survives_a_full_budget_cycle() {
        // Regression for the O(n) `Vec::remove(0)` eviction: drive a
        // deliberately tiny µop budget through a full insert-evict-
        // reinsert cycle and check the stats and resident set stay
        // consistent under the VecDeque FIFO.
        let cfg = ExperimentConfig::fast();
        let mut cache = ProgramCache::new();
        let mut keys = Vec::new();
        for rows in [4usize, 5, 6] {
            let dims = GemmDims {
                rows,
                inner: 32,
                cols: 16,
            };
            let (a, _) = operands(dims, NmPattern::P1_4, cfg.seed, cfg.precision);
            let (layout, params) = plan_kernel(Algorithm::IndexMac2, &a, dims.cols, &cfg).unwrap();
            keys.push((layout, params));
        }
        let first = cache
            .get_or_build(Algorithm::IndexMac2, &keys[0].0, &keys[0].1)
            .unwrap();
        assert_eq!((cache.stats.misses, cache.stats.evictions), (1, 0));
        // Budget = exactly the first entry: every later insertion must
        // evict the oldest resident entry, oldest-first.
        cache.max_uops = first.program.len();
        for (layout, params) in &keys[1..] {
            cache
                .get_or_build(Algorithm::IndexMac2, layout, params)
                .unwrap();
            assert_eq!(cache.stats.entries, 1);
        }
        assert_eq!((cache.stats.misses, cache.stats.evictions), (3, 2));
        // Cycling back to the first key: it was evicted, so this is a
        // miss that in turn evicts the current resident...
        cache
            .get_or_build(Algorithm::IndexMac2, &keys[0].0, &keys[0].1)
            .unwrap();
        assert_eq!((cache.stats.misses, cache.stats.evictions), (4, 3));
        // ...and re-requesting the now-resident entry is a pure hit.
        cache
            .get_or_build(Algorithm::IndexMac2, &keys[0].0, &keys[0].1)
            .unwrap();
        assert_eq!((cache.stats.hits, cache.stats.evictions), (1, 3));
        let resident: usize = cache.entries.iter().map(|(.., k)| k.program.len()).sum();
        assert_eq!(cache.resident_uops, resident, "accounting stays exact");
        // The entry just inserted is never evicted, even over budget.
        cache.max_uops = 0;
        cache
            .get_or_build(Algorithm::IndexMac2, &keys[1].0, &keys[1].1)
            .unwrap();
        assert_eq!(cache.stats.entries, 1, "in-flight entry must survive");
        assert_eq!(cache.entries.len(), 1);
    }

    #[test]
    fn shard_size_cross_check_referees_the_timed_run() {
        // `shard_size: Some(n)` reruns every kernel through the sharded
        // counting engine and panics on any divergence from the timed
        // run; passing here means the referee agreed. The returned
        // (timed) report must be byte-identical to an uncross-checked
        // run.
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let base = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &cfg()).unwrap();
        for shard_size in [500u64, 100_000] {
            let sharded_cfg = ExperimentConfig {
                shard_size: Some(shard_size),
                ..cfg()
            };
            let r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &sharded_cfg).unwrap();
            assert_eq!(r.report, base.report, "shard size {shard_size}");
        }
        // The quantized (check-elided, i32) datapath referees too.
        let q = ExperimentConfig {
            shard_size: Some(999),
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::quantized(Precision::I8)
        };
        run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &q).unwrap();
    }
}
