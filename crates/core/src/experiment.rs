//! Experiment drivers: the building blocks of the paper's Figures 4-6.

use indexmac_kernels::{
    dense, indexmac, indexmac2, rowwise, scalar_idx, verify, GemmDims, GemmLayout, KernelParams,
};
use indexmac_models::{GemmCaps, Model, ModelLayer};
use indexmac_sparse::{prune, quant, DenseMatrix, NmPattern, StructuredSparseMatrix};
use indexmac_vpu::{RunReport, SimConfig};
use std::error::Error;
use std::fmt;

/// The element precision of an experiment's operands (re-exported from
/// `indexmac-sparse`): `f32` is the paper's configuration; `i8`/`i16`
/// run the widening-MAC quantized datapath with bit-exact verification.
pub use indexmac_sparse::ElemType as Precision;

/// Which kernel to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Paper Algorithm 1: dense row-wise baseline.
    Dense,
    /// Paper Algorithm 2: "Row-Wise-SpMM" (the evaluated baseline).
    RowWiseSpmm,
    /// Paper Algorithm 3: the proposed `vindexmac` kernel.
    IndexMac,
    /// The second-generation `vindexmac.vvi` kernel (arXiv 2501.10189):
    /// index consumed in the vector register file, optional register
    /// grouping via [`ExperimentConfig::lmul`].
    IndexMac2,
    /// Extension: `vindexmac` with scalar-loaded metadata (ablation).
    ScalarIndexed,
}

impl Algorithm {
    /// Every simulatable kernel, for exhaustive sweeps and tests.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Dense,
        Algorithm::RowWiseSpmm,
        Algorithm::IndexMac,
        Algorithm::IndexMac2,
        Algorithm::ScalarIndexed,
    ];
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Dense => write!(f, "Dense"),
            Algorithm::RowWiseSpmm => write!(f, "Row-Wise-SpMM"),
            Algorithm::IndexMac => write!(f, "Proposed (vindexmac)"),
            Algorithm::IndexMac2 => write!(f, "Proposed-2 (vindexmac.vvi)"),
            Algorithm::ScalarIndexed => write!(f, "Scalar-indexed vindexmac"),
        }
    }
}

/// Shared configuration of one experimental campaign.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Processor model (Table I by default).
    pub sim: SimConfig,
    /// GEMM size caps (see EXPERIMENTS.md for why capping is sound).
    pub caps: GemmCaps,
    /// B-tile rows kept resident (`L`; the paper uses 16). For
    /// [`Algorithm::IndexMac2`] with `lmul > 1` the value is re-fitted
    /// to the grouped register budget via
    /// [`GemmLayout::fit_tile_rows`].
    pub tile_rows: usize,
    /// Register grouping for [`Algorithm::IndexMac2`] (`1`, `2` or
    /// `4`; every other kernel always runs ungrouped).
    pub lmul: usize,
    /// Element precision of A and B ([`Precision::F32`] by default).
    /// The quantized precisions select SEW e8/e16 (`vl = LMUL·VLEN/SEW`),
    /// run only the `vindexmac` kernels, and verify bit-exactly against
    /// the i32 reference.
    pub precision: Precision,
    /// Kernel tunables (unroll x4, B-stationary by default). The unroll
    /// factor is clamped to the grouped register budget for
    /// [`Algorithm::IndexMac2`].
    pub params: KernelParams,
    /// Seed for operand generation.
    pub seed: u64,
    /// Whether to verify every simulated product against the reference
    /// (cheap insurance; on by default).
    pub verify: bool,
    /// The kernel measured as the comparison baseline
    /// ([`Algorithm::RowWiseSpmm`] by default, as in the paper).
    pub baseline: Algorithm,
    /// The kernel measured as the proposed side
    /// ([`Algorithm::IndexMac`] by default; set
    /// [`Algorithm::IndexMac2`] to reproduce the follow-up numbers).
    pub proposed: Algorithm,
}

impl ExperimentConfig {
    /// The paper's evaluation configuration with the default caps.
    pub fn paper() -> Self {
        Self {
            sim: SimConfig::table_i(),
            caps: GemmCaps::default_eval(),
            tile_rows: 16,
            lmul: 1,
            precision: Precision::F32,
            params: KernelParams::default(),
            seed: 0xD47E_2024,
            verify: true,
            baseline: Algorithm::RowWiseSpmm,
            proposed: Algorithm::IndexMac,
        }
    }

    /// The transformer-campaign defaults: the second-generation
    /// `vindexmac.vvi` kernel under `m2` register grouping against the
    /// first generation — the configuration of the follow-up work
    /// (arXiv 2501.10189) on DNN GEMM shapes, and what the CLI `model`
    /// command runs for transformer presets. Quantized presets clamp
    /// the grouping to the widening budget (see [`compare_model`]).
    pub fn transformer() -> Self {
        Self::second_generation(2)
    }

    /// A quantized campaign at `precision`: both comparison sides run
    /// the `vindexmac` kernels (the walk-based baselines are f32-only),
    /// with `vindexmac.vx` as the baseline and `vindexmac.vvi` proposed.
    pub fn quantized(precision: Precision) -> Self {
        Self {
            precision,
            baseline: Algorithm::IndexMac,
            proposed: Algorithm::IndexMac2,
            ..Self::paper()
        }
    }

    /// Small caps for unit tests and doc examples.
    pub fn fast() -> Self {
        Self {
            caps: GemmCaps::smoke(),
            ..Self::paper()
        }
    }

    /// Paper config comparing the second-generation kernel against
    /// Algorithm 3 under `lmul` register grouping.
    pub fn second_generation(lmul: usize) -> Self {
        Self {
            lmul,
            baseline: Algorithm::IndexMac,
            proposed: Algorithm::IndexMac2,
            ..Self::paper()
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Result of simulating one kernel on one (possibly capped) GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// The kernel simulated.
    pub algorithm: Algorithm,
    /// Sparsity pattern of A.
    pub pattern: NmPattern,
    /// The simulated (capped) GEMM shape.
    pub gemm: GemmDims,
    /// The uncapped shape this stands for.
    pub full_gemm: GemmDims,
    /// Timing and traffic measurements.
    pub report: RunReport,
}

/// Experiment-level errors.
#[derive(Debug)]
pub enum ExperimentError {
    /// Kernel construction failed.
    Kernel(indexmac_kernels::KernelError),
    /// Simulation or verification failed.
    Verify(verify::VerifyError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Kernel(e) => write!(f, "kernel construction failed: {e}"),
            ExperimentError::Verify(e) => write!(f, "kernel execution failed: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Kernel(e) => Some(e),
            ExperimentError::Verify(e) => Some(e),
        }
    }
}

impl From<indexmac_kernels::KernelError> for ExperimentError {
    fn from(e: indexmac_kernels::KernelError) -> Self {
        ExperimentError::Kernel(e)
    }
}

impl From<verify::VerifyError> for ExperimentError {
    fn from(e: verify::VerifyError) -> Self {
        ExperimentError::Verify(e)
    }
}

/// Generates the seeded operands for a GEMM shape at the campaign
/// precision: uniform f32, or full-range exact integers for i8/i16.
fn operands(
    dims: GemmDims,
    pattern: NmPattern,
    seed: u64,
    precision: Precision,
) -> (StructuredSparseMatrix, DenseMatrix) {
    if precision.is_int() {
        let a = quant::random_structured_int(dims.rows, dims.inner, pattern, seed, precision);
        let b = quant::random_dense_int(dims.inner, dims.cols, seed.wrapping_add(1), precision);
        (a, b)
    } else {
        let a = prune::random_structured(dims.rows, dims.inner, pattern, seed);
        let b = DenseMatrix::random(dims.inner, dims.cols, seed.wrapping_add(1));
        (a, b)
    }
}

/// Simulates `algorithm` on a GEMM of shape `dims` (caps applied).
///
/// # Errors
///
/// Returns [`ExperimentError`] on kernel-construction or simulation
/// failures (both indicate configuration bugs, not data conditions).
pub fn run_gemm(
    dims: GemmDims,
    pattern: NmPattern,
    algorithm: Algorithm,
    cfg: &ExperimentConfig,
) -> Result<LayerResult, ExperimentError> {
    let capped = cfg.caps.apply(dims);
    let (a, b) = operands(capped, pattern, cfg.seed, cfg.precision);
    let program;
    let layout;
    if algorithm == Algorithm::IndexMac2 {
        // The grouped layout shrinks L (the tile must fit lmul× more
        // registers) and may cap the unroll factor.
        let tile_rows = GemmLayout::fit_tile_rows(cfg.tile_rows, cfg.lmul, pattern);
        layout = GemmLayout::plan_elem(
            &a,
            capped.cols,
            &cfg.sim,
            tile_rows,
            cfg.lmul,
            cfg.precision,
        )?;
        // Clamp a too-large unroll to the grouped register budget, but
        // let zero flow through so it is rejected like every other
        // kernel's BadUnroll.
        let params = KernelParams {
            unroll: cfg.params.unroll.min(indexmac2::max_unroll(&layout)),
            ..cfg.params
        };
        program = indexmac2::build(&layout, &params)?;
    } else {
        layout = GemmLayout::plan_elem(&a, capped.cols, &cfg.sim, cfg.tile_rows, 1, cfg.precision)?;
        // The widening accumulator shrinks Algorithm 3's unroll budget;
        // clamp like the grouped second-generation arm (zero still
        // flows through to BadUnroll). The f32 budget is unchanged.
        let v1_params = KernelParams {
            unroll: cfg.params.unroll.min(indexmac::max_unroll(&layout)),
            ..cfg.params
        };
        program = match algorithm {
            Algorithm::Dense => dense::build(&layout, &cfg.params)?,
            Algorithm::RowWiseSpmm => rowwise::build(&layout, &cfg.params)?,
            Algorithm::IndexMac => indexmac::build(&layout, &v1_params)?,
            Algorithm::IndexMac2 => unreachable!("grouped arm handles IndexMac2"),
            Algorithm::ScalarIndexed => scalar_idx::build(&layout, &cfg.params)?,
        };
    }
    let run = if cfg.verify && algorithm != Algorithm::Dense {
        verify::run_and_check(&program, &a, &b, &layout, &cfg.sim)?
    } else {
        verify::run_kernel(&program, &a, &b, &layout, &cfg.sim)?
    };
    Ok(LayerResult {
        algorithm,
        pattern,
        gemm: capped,
        full_gemm: dims,
        report: run.report,
    })
}

/// Baseline-vs-proposed comparison on one GEMM shape. Which kernels the
/// two sides run comes from [`ExperimentConfig::baseline`] /
/// [`ExperimentConfig::proposed`] (Row-Wise-SpMM vs `vindexmac.vx` by
/// default, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct GemmComparison {
    /// Baseline-kernel measurements.
    pub baseline: LayerResult,
    /// Proposed-kernel measurements.
    pub proposed: LayerResult,
}

impl GemmComparison {
    /// Fig. 4/5 metric: baseline cycles / proposed cycles.
    pub fn speedup(&self) -> f64 {
        self.proposed.report.speedup_over(&self.baseline.report)
    }

    /// Fig. 6 metric: proposed memory accesses / baseline's.
    pub fn mem_ratio(&self) -> f64 {
        self.proposed
            .report
            .normalized_mem_accesses(&self.baseline.report)
    }
}

/// Runs both kernels on the same operands (paper Fig. 4 per-layer bar).
///
/// # Errors
///
/// See [`run_gemm`].
pub fn compare_gemm(
    dims: GemmDims,
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<GemmComparison, ExperimentError> {
    Ok(GemmComparison {
        baseline: run_gemm(dims, pattern, cfg.baseline, cfg)?,
        proposed: run_gemm(dims, pattern, cfg.proposed, cfg)?,
    })
}

/// Per-layer comparison (adds the layer name).
#[derive(Debug, Clone)]
pub struct LayerComparison {
    /// The layer's name in the network.
    pub name: String,
    /// The two-kernel comparison on its (capped) GEMM.
    pub comparison: GemmComparison,
}

/// Runs both kernels on a model layer's lowered GEMM (a CNN layer's
/// im2col product, a transformer projection, ...).
///
/// # Errors
///
/// See [`run_gemm`].
pub fn compare_layer(
    layer: &ModelLayer,
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<LayerComparison, ExperimentError> {
    Ok(LayerComparison {
        name: layer.name.clone(),
        comparison: compare_gemm(layer.gemm, pattern, cfg)?,
    })
}

/// Whole-network comparison: every GEMM layer of a model.
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// Model name.
    pub model: String,
    /// Sparsity pattern of the weights.
    pub pattern: NmPattern,
    /// Element precision every layer actually simulated at (the model's
    /// own precision — quantized presets run the e8/e16 datapath even
    /// under an f32-configured campaign).
    pub precision: Precision,
    /// Per-layer results, in network order.
    pub layers: Vec<LayerComparison>,
}

impl ModelComparison {
    /// Total-network speedup (paper Fig. 5): summed baseline cycles over
    /// summed proposed cycles.
    pub fn total_speedup(&self) -> f64 {
        let base: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.baseline.report.cycles)
            .sum();
        let prop: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.proposed.report.cycles)
            .sum();
        base as f64 / prop as f64
    }

    /// Total normalized memory accesses (paper Fig. 6).
    pub fn total_mem_ratio(&self) -> f64 {
        let base: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.baseline.report.mem.total_accesses())
            .sum();
        let prop: u64 = self
            .layers
            .iter()
            .map(|l| l.comparison.proposed.report.mem.total_accesses())
            .sum();
        prop as f64 / base as f64
    }

    /// Range of per-layer speedups `(min, max)`.
    pub fn speedup_range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = 0.0_f64;
        for l in &self.layers {
            let s = l.comparison.speedup();
            min = min.min(s);
            max = max.max(s);
        }
        (min, max)
    }
}

/// Reconciles a campaign configuration with a model's own precision:
/// quantized presets must simulate the quantized datapath even when the
/// caller passes an f32-default configuration, integer precisions force
/// the comparison onto the `vindexmac` kernel pair (the walk-based
/// baselines have no quantized emission path), and register grouping is
/// clamped to the widening budget (`lmul · 32/SEW ≤ 4`, so e8 runs
/// ungrouped and e16 at most `m2` — the accumulator group would
/// otherwise exceed `m4`).
fn config_for_model(model: &Model, cfg: &ExperimentConfig) -> ExperimentConfig {
    let mut out = ExperimentConfig {
        precision: model.precision,
        ..*cfg
    };
    if model.precision.is_int() {
        out.lmul = out.lmul.min(4 / model.precision.widen()).max(1);
        let int_capable = |a: Algorithm| matches!(a, Algorithm::IndexMac | Algorithm::IndexMac2);
        if !(int_capable(out.baseline) && int_capable(out.proposed) && out.baseline != out.proposed)
        {
            // The configured pair cannot run (or degenerates) at an
            // integer precision: use the standard quantized comparison,
            // vx vs vvi.
            out.baseline = Algorithm::IndexMac;
            out.proposed = Algorithm::IndexMac2;
        }
    }
    out
}

/// Runs the full per-layer comparison for one model (paper Fig. 4 for
/// ResNet50; summed for Fig. 5/6; per-block tables for the transformer
/// presets). The model's own precision wins over `cfg.precision` — an
/// int8 preset always runs the e8 datapath, with the comparison sides
/// moved onto the `vindexmac` pair if the configured kernels have no
/// quantized path and the register grouping clamped to the widening
/// budget.
///
/// Identical GEMM shapes (every block of a transformer stack repeats
/// one geometry) are simulated **once** and their results replicated:
/// operand generation is seeded purely by the campaign seed and shape,
/// so the per-layer reports are bit-identical to the naive loop.
///
/// # Errors
///
/// See [`run_gemm`]. Fails on the first failing layer.
pub fn compare_model(
    model: &Model,
    pattern: NmPattern,
    cfg: &ExperimentConfig,
) -> Result<ModelComparison, ExperimentError> {
    let cfg = config_for_model(model, cfg);
    let mut cache: Vec<(GemmDims, GemmComparison)> = Vec::new();
    let mut layers = Vec::with_capacity(model.layers.len());
    for layer in &model.layers {
        let hit = cache.iter().find(|(g, _)| *g == layer.gemm);
        let comparison = match hit {
            Some((_, c)) => c.clone(),
            None => {
                let c = compare_gemm(layer.gemm, pattern, &cfg)?;
                cache.push((layer.gemm, c.clone()));
                c
            }
        };
        layers.push(LayerComparison {
            name: layer.name.clone(),
            comparison,
        });
    }
    Ok(ModelComparison {
        model: model.name.clone(),
        pattern,
        precision: cfg.precision,
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::fast()
    }

    #[test]
    fn run_gemm_all_algorithms() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        for alg in Algorithm::ALL {
            let r = run_gemm(dims, NmPattern::P1_4, alg, &cfg()).unwrap();
            assert!(r.report.cycles > 0, "{alg}");
            assert_eq!(r.gemm.rows, 8);
        }
    }

    #[test]
    fn indexmac2_beats_indexmac_on_cycles_and_instructions() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let v1 = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac, &cfg()).unwrap();
        let v2 = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac2, &cfg()).unwrap();
        assert!(
            v2.report.cycles < v1.report.cycles,
            "vvi {} vs vx {}",
            v2.report.cycles,
            v1.report.cycles
        );
        assert!(v2.report.instructions < v1.report.instructions);
    }

    #[test]
    fn second_generation_config_compares_the_two_indexmacs() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::second_generation(1)
        };
        let c = compare_gemm(dims, NmPattern::P1_4, &cfg).unwrap();
        assert_eq!(c.baseline.algorithm, Algorithm::IndexMac);
        assert_eq!(c.proposed.algorithm, Algorithm::IndexMac2);
        assert!(c.speedup() > 1.0, "speedup {}", c.speedup());
    }

    #[test]
    fn grouped_indexmac2_runs_and_verifies() {
        let dims = GemmDims {
            rows: 16,
            inner: 64,
            cols: 64,
        };
        for lmul in [2, 4] {
            let cfg = ExperimentConfig {
                lmul,
                caps: indexmac_models::GemmCaps::smoke(),
                ..ExperimentConfig::paper()
            };
            let r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &cfg).unwrap();
            assert!(r.report.cycles > 0, "lmul {lmul}");
        }
    }

    #[test]
    fn caps_are_applied_and_recorded() {
        let dims = GemmDims {
            rows: 100,
            inner: 1000,
            cols: 1000,
        };
        let r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &cfg()).unwrap();
        assert_eq!(r.full_gemm, dims);
        assert_eq!(r.gemm.rows, 16);
        assert_eq!(r.gemm.inner, 128);
        assert_eq!(r.gemm.cols, 32);
    }

    #[test]
    fn comparison_shows_speedup_and_traffic_cut() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let c = compare_gemm(dims, NmPattern::P1_4, &cfg()).unwrap();
        assert!(c.speedup() > 1.2, "speedup {}", c.speedup());
        assert!(c.mem_ratio() < 0.8, "mem ratio {}", c.mem_ratio());
    }

    #[test]
    fn sparse_beats_dense_by_mac_reduction() {
        let dims = GemmDims {
            rows: 16,
            inner: 128,
            cols: 32,
        };
        let dense_r = run_gemm(dims, NmPattern::P1_4, Algorithm::Dense, &cfg()).unwrap();
        let sparse_r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac, &cfg()).unwrap();
        // 1:4 structured sparsity skips 3/4 of the MACs; expect a clear win.
        assert!(
            sparse_r.report.cycles * 2 < dense_r.report.cycles,
            "sparse {} vs dense {}",
            sparse_r.report.cycles,
            dense_r.report.cycles
        );
    }

    #[test]
    fn model_comparison_on_a_few_layers() {
        let tiny = indexmac_models::resnet50().head(3);
        let c = compare_model(&tiny, NmPattern::P2_4, &cfg()).unwrap();
        assert_eq!(c.layers.len(), 3);
        assert!(c.total_speedup() > 1.0);
        assert!(c.total_mem_ratio() < 1.0);
        let (lo, hi) = c.speedup_range();
        assert!(lo <= hi);
    }

    #[test]
    fn quantized_run_gemm_is_bit_exact_and_runs_both_kernels() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        for precision in [Precision::I8, Precision::I16] {
            let cfg = ExperimentConfig {
                caps: indexmac_models::GemmCaps::smoke(),
                ..ExperimentConfig::quantized(precision)
            };
            // verify=true routes through the exact integer checker.
            assert!(cfg.verify);
            let c = compare_gemm(dims, NmPattern::P1_4, &cfg).unwrap();
            assert_eq!(c.baseline.algorithm, Algorithm::IndexMac);
            assert_eq!(c.proposed.algorithm, Algorithm::IndexMac2);
            assert!(c.proposed.report.cycles > 0, "{precision}");
        }
    }

    #[test]
    fn quantized_rejects_float_only_kernels() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::quantized(Precision::I8)
        };
        for alg in [
            Algorithm::Dense,
            Algorithm::RowWiseSpmm,
            Algorithm::ScalarIndexed,
        ] {
            let err = run_gemm(dims, NmPattern::P1_4, alg, &cfg).unwrap_err();
            assert!(matches!(err, ExperimentError::Kernel(_)), "{alg}: {err}");
        }
    }

    #[test]
    fn e8_beats_e32_at_the_acceptance_shape() {
        // Acceptance criterion: at 64x256x128 / 1:4, e8 IndexMAC2
        // reports fewer cycles and fewer dynamic vector instructions
        // than e32 with the same algorithm, with >= 2x fewer vector
        // instructions in steady state.
        let dims = GemmDims {
            rows: 64,
            inner: 256,
            cols: 128,
        };
        let e32_cfg = ExperimentConfig::paper();
        assert!(
            !e32_cfg.caps.clips(dims),
            "acceptance shape must run uncapped"
        );
        let e32 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &e32_cfg).unwrap();
        let e8_cfg = ExperimentConfig::quantized(Precision::I8);
        let e8 = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &e8_cfg).unwrap();
        assert!(
            e8.report.cycles < e32.report.cycles,
            "e8 {} cycles vs e32 {}",
            e8.report.cycles,
            e32.report.cycles
        );
        assert!(
            e8.report.counts.vector_total() * 2 <= e32.report.counts.vector_total(),
            "e8 {} vector instructions vs e32 {}",
            e8.report.counts.vector_total(),
            e32.report.counts.vector_total()
        );
        assert!(e8.report.instructions < e32.report.instructions);
    }

    #[test]
    fn quantized_grouped_e16_runs() {
        // e16 supports m2 (widen 2 x lmul 2 = the m4 accumulator cap).
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 64,
        };
        let cfg = ExperimentConfig {
            lmul: 2,
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::quantized(Precision::I16)
        };
        let r = run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &cfg).unwrap();
        assert!(r.report.cycles > 0);
        // e8 with grouping exceeds the accumulator cap and is rejected.
        let bad = ExperimentConfig {
            lmul: 2,
            ..ExperimentConfig::quantized(Precision::I8)
        };
        assert!(run_gemm(dims, NmPattern::P1_4, Algorithm::IndexMac2, &bad).is_err());
    }

    #[test]
    fn compare_model_honours_the_models_precision() {
        // An int8 preset under a default f32 campaign must simulate the
        // e8 datapath with the vindexmac kernel pair — not silently run
        // f32 under an "-int8" label.
        let full = indexmac_models::resnet50_int8();
        let tiny = full.head(2);
        let c = compare_model(&tiny, NmPattern::P1_4, &cfg()).unwrap();
        assert_eq!(c.precision, Precision::I8);
        for l in &c.layers {
            assert_eq!(l.comparison.baseline.algorithm, Algorithm::IndexMac);
            assert_eq!(l.comparison.proposed.algorithm, Algorithm::IndexMac2);
        }
        // And an f32 model under an f32 campaign is untouched.
        let f = compare_model(
            &indexmac_models::resnet50().head(1),
            NmPattern::P1_4,
            &cfg(),
        )
        .unwrap();
        assert_eq!(f.precision, Precision::F32);
        assert_eq!(
            f.layers[0].comparison.baseline.algorithm,
            Algorithm::RowWiseSpmm
        );
    }

    #[test]
    fn transformer_config_pairs_the_two_generations_under_m2() {
        let cfg = ExperimentConfig::transformer();
        assert_eq!(cfg.baseline, Algorithm::IndexMac);
        assert_eq!(cfg.proposed, Algorithm::IndexMac2);
        assert_eq!(cfg.lmul, 2);
        assert_eq!(cfg.precision, Precision::F32);
    }

    #[test]
    fn compare_model_clamps_grouping_for_quantized_presets() {
        // The transformer campaign runs m2, but e8 widens 4×: grouping
        // must clamp to m1 instead of erroring (and e16 may keep m2).
        let bert = indexmac_models::bert_base_int8().head(1);
        let cfg = ExperimentConfig {
            caps: indexmac_models::GemmCaps::smoke(),
            ..ExperimentConfig::transformer()
        };
        let c = compare_model(&bert, NmPattern::P2_4, &cfg).unwrap();
        assert_eq!(c.precision, Precision::I8);
        assert!(c.layers[0].comparison.proposed.report.cycles > 0);
        let i16_model = indexmac_models::bert_base()
            .head(1)
            .with_precision("BERT-base-i16-head", Precision::I16);
        assert!(compare_model(&i16_model, NmPattern::P2_4, &cfg).is_ok());
    }

    #[test]
    fn compare_model_dedupes_repeated_shapes_bit_identically() {
        // Transformer blocks repeat one geometry; the deduped driver
        // must return exactly what a naive per-layer loop returns.
        let model = indexmac_models::bert_base().head(8); // spans 2 blocks
        let cfg = cfg();
        let c = compare_model(&model, NmPattern::P1_4, &cfg).unwrap();
        assert_eq!(c.layers.len(), 8);
        for (layer, result) in model.layers.iter().zip(&c.layers) {
            let manual = compare_gemm(layer.gemm, NmPattern::P1_4, &cfg).unwrap();
            assert_eq!(result.comparison.baseline.report, manual.baseline.report);
            assert_eq!(result.comparison.proposed.report, manual.proposed.report);
        }
        // Layers 0 (block0.attn.q) and 6 (block1.attn.q) share a shape.
        assert_eq!(
            c.layers[0].comparison.proposed.report,
            c.layers[6].comparison.proposed.report
        );
    }

    #[test]
    fn results_are_deterministic() {
        let dims = GemmDims {
            rows: 8,
            inner: 64,
            cols: 32,
        };
        let a = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac, &cfg()).unwrap();
        let b = run_gemm(dims, NmPattern::P2_4, Algorithm::IndexMac, &cfg()).unwrap();
        assert_eq!(a.report.cycles, b.report.cycles);
        assert_eq!(a.report.mem.total_accesses(), b.report.mem.total_accesses());
    }
}
