//! Bit-exact persistence codec for [`CellResult`]: a `Value`-tree
//! encoding that round-trips every measurement — including the two f64
//! hit rates, stored as raw IEEE-754 bits — so a warm store hit is
//! indistinguishable from a fresh simulation.
//!
//! The sweep service's acceptance bar is *bit identity*: a result
//! served from disk must compare equal (`==`, which on [`RunReport`]
//! includes float fields) to the result a fresh [`run_grid`] would
//! produce. JSON text round-trips of floats are shortest-representation
//! faithful in Rust, but the codec does not lean on that: `f64`s are
//! persisted as their `to_bits()` integer, making the record format
//! trivially exact and grep-friendly for everything else.
//!
//! [`run_grid`]: crate::sweep::run_grid

use crate::experiment::{Algorithm, GemmComparison, LayerResult};
use crate::sweep::{CellResult, SweepCell};
use indexmac_isa::InstrClass;
use indexmac_kernels::{Dataflow, GemmDims};
use indexmac_mem::MemStats;
use indexmac_sparse::NmPattern;
use indexmac_vpu::RunReport;
use serde::Value;

/// Version tag of the record encoding itself (independent of the
/// digest version: the same digest can be re-encoded).
pub const RECORD_VERSION: u32 = 1;

/// Stable string tag of an [`Algorithm`] (the CLI's vocabulary).
fn algorithm_name(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Dense => "dense",
        Algorithm::RowWiseSpmm => "rowwise",
        Algorithm::IndexMac => "indexmac",
        Algorithm::IndexMac2 => "indexmac2",
        Algorithm::ScalarIndexed => "scalar",
    }
}

fn algorithm_from_name(s: &str) -> Result<Algorithm, String> {
    Ok(match s {
        "dense" => Algorithm::Dense,
        "rowwise" => Algorithm::RowWiseSpmm,
        "indexmac" => Algorithm::IndexMac,
        "indexmac2" => Algorithm::IndexMac2,
        "scalar" => Algorithm::ScalarIndexed,
        other => return Err(format!("unknown algorithm tag '{other}'")),
    })
}

/// Stable string tag of a [`Dataflow`].
fn dataflow_name(d: Dataflow) -> &'static str {
    match d {
        Dataflow::AStationary => "a",
        Dataflow::BStationary => "b",
        Dataflow::CStationary => "c",
    }
}

fn dataflow_from_name(s: &str) -> Result<Dataflow, String> {
    Ok(match s {
        "a" => Dataflow::AStationary,
        "b" => Dataflow::BStationary,
        "c" => Dataflow::CStationary,
        other => return Err(format!("unknown dataflow tag '{other}'")),
    })
}

fn dims_value(d: GemmDims) -> Value {
    Value::object([
        ("rows", Value::UInt(d.rows as u64)),
        ("inner", Value::UInt(d.inner as u64)),
        ("cols", Value::UInt(d.cols as u64)),
    ])
}

fn report_value(r: &RunReport) -> Value {
    Value::object([
        ("cycles", Value::UInt(r.cycles)),
        ("instructions", Value::UInt(r.instructions)),
        (
            "counts",
            Value::Array(
                InstrClass::ALL
                    .iter()
                    .map(|&c| Value::UInt(r.counts.get(c)))
                    .collect(),
            ),
        ),
        (
            "mem",
            Value::object([
                ("scalar_loads", Value::UInt(r.mem.scalar_loads)),
                ("scalar_stores", Value::UInt(r.mem.scalar_stores)),
                ("vector_loads", Value::UInt(r.mem.vector_loads)),
                ("vector_stores", Value::UInt(r.mem.vector_stores)),
                ("dram_reads", Value::UInt(r.mem.dram_reads)),
                ("dram_writes", Value::UInt(r.mem.dram_writes)),
            ]),
        ),
        ("l1d_hit_rate_bits", Value::UInt(r.l1d_hit_rate.to_bits())),
        ("l2_hit_rate_bits", Value::UInt(r.l2_hit_rate.to_bits())),
        ("engine_busy_cycles", Value::UInt(r.engine_busy_cycles)),
        ("vq_stall_cycles", Value::UInt(r.vq_stall_cycles)),
        ("rob_stall_cycles", Value::UInt(r.rob_stall_cycles)),
        ("v2s_syncs", Value::UInt(r.v2s_syncs)),
    ])
}

fn layer_value(l: &LayerResult) -> Value {
    Value::object([
        ("algorithm", Value::Str(algorithm_name(l.algorithm).into())),
        ("pattern_n", Value::UInt(l.pattern.n() as u64)),
        ("pattern_m", Value::UInt(l.pattern.m() as u64)),
        ("gemm", dims_value(l.gemm)),
        ("full_gemm", dims_value(l.full_gemm)),
        ("report", report_value(&l.report)),
    ])
}

/// Encodes a [`CellResult`] into the persistent record form.
pub fn encode_cell_result(r: &CellResult) -> Value {
    Value::object([
        ("version", Value::UInt(u64::from(RECORD_VERSION))),
        (
            "cell",
            Value::object([
                ("dims", dims_value(r.cell.dims)),
                ("pattern_n", Value::UInt(r.cell.pattern.n() as u64)),
                ("pattern_m", Value::UInt(r.cell.pattern.m() as u64)),
                (
                    "dataflow",
                    Value::Str(dataflow_name(r.cell.dataflow).into()),
                ),
                ("seed", Value::UInt(r.cell.seed)),
            ]),
        ),
        ("capped", dims_value(r.capped)),
        ("baseline", layer_value(&r.comparison.baseline)),
        ("proposed", layer_value(&r.comparison.proposed)),
    ])
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

fn field_usize(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(field_u64(v, key)?).map_err(|e| format!("field '{key}' out of range: {e}"))
}

fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

fn decode_dims(v: &Value) -> Result<GemmDims, String> {
    Ok(GemmDims {
        rows: field_usize(v, "rows")?,
        inner: field_usize(v, "inner")?,
        cols: field_usize(v, "cols")?,
    })
}

fn decode_pattern(v: &Value) -> Result<NmPattern, String> {
    NmPattern::new(field_usize(v, "pattern_n")?, field_usize(v, "pattern_m")?)
        .map_err(|e| format!("invalid pattern: {e}"))
}

fn decode_report(v: &Value) -> Result<RunReport, String> {
    let counts_field = field(v, "counts")?
        .as_array()
        .ok_or_else(|| "field 'counts' is not an array".to_string())?;
    if counts_field.len() != InstrClass::COUNT {
        return Err(format!(
            "counts has {} entries, expected {}",
            counts_field.len(),
            InstrClass::COUNT
        ));
    }
    let mut counts = indexmac_vpu::ClassCounts::default();
    for (&class, value) in InstrClass::ALL.iter().zip(counts_field) {
        counts.set(
            class,
            value
                .as_u64()
                .ok_or_else(|| "counts entry is not an unsigned integer".to_string())?,
        );
    }
    let mem = field(v, "mem")?;
    Ok(RunReport {
        cycles: field_u64(v, "cycles")?,
        instructions: field_u64(v, "instructions")?,
        counts,
        mem: MemStats {
            scalar_loads: field_u64(mem, "scalar_loads")?,
            scalar_stores: field_u64(mem, "scalar_stores")?,
            vector_loads: field_u64(mem, "vector_loads")?,
            vector_stores: field_u64(mem, "vector_stores")?,
            dram_reads: field_u64(mem, "dram_reads")?,
            dram_writes: field_u64(mem, "dram_writes")?,
        },
        l1d_hit_rate: f64::from_bits(field_u64(v, "l1d_hit_rate_bits")?),
        l2_hit_rate: f64::from_bits(field_u64(v, "l2_hit_rate_bits")?),
        engine_busy_cycles: field_u64(v, "engine_busy_cycles")?,
        vq_stall_cycles: field_u64(v, "vq_stall_cycles")?,
        rob_stall_cycles: field_u64(v, "rob_stall_cycles")?,
        v2s_syncs: field_u64(v, "v2s_syncs")?,
    })
}

fn decode_layer(v: &Value) -> Result<LayerResult, String> {
    Ok(LayerResult {
        algorithm: algorithm_from_name(field_str(v, "algorithm")?)?,
        pattern: decode_pattern(v)?,
        gemm: decode_dims(field(v, "gemm")?)?,
        full_gemm: decode_dims(field(v, "full_gemm")?)?,
        report: decode_report(field(v, "report")?)?,
    })
}

/// Decodes a persisted record back into the exact [`CellResult`] it
/// was encoded from.
///
/// # Errors
///
/// Returns a descriptive message for any missing field, wrong type,
/// unknown tag or unsupported record version — the store maps every
/// decode failure to a cache miss.
pub fn decode_cell_result(v: &Value) -> Result<CellResult, String> {
    let version = field_u64(v, "version")?;
    if version != u64::from(RECORD_VERSION) {
        return Err(format!(
            "record version {version} unsupported (expected {RECORD_VERSION})"
        ));
    }
    let cell = field(v, "cell")?;
    Ok(CellResult {
        cell: SweepCell {
            dims: decode_dims(field(cell, "dims")?)?,
            pattern: decode_pattern(cell)?,
            dataflow: dataflow_from_name(field_str(cell, "dataflow")?)?,
            seed: field_u64(cell, "seed")?,
        },
        capped: decode_dims(field(v, "capped")?)?,
        comparison: GemmComparison {
            baseline: decode_layer(field(v, "baseline")?)?,
            proposed: decode_layer(field(v, "proposed")?)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::sweep::{run_cell, SweepGrid};

    fn sample_results() -> Vec<CellResult> {
        let grid = SweepGrid::new(
            NmPattern::EVALUATED.to_vec(),
            vec![GemmDims {
                rows: 4,
                inner: 32,
                cols: 16,
            }],
        );
        let cfg = ExperimentConfig::fast();
        grid.cells()
            .into_iter()
            .map(|c| run_cell(c, &cfg).unwrap())
            .collect()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for result in sample_results() {
            let value = encode_cell_result(&result);
            let decoded = decode_cell_result(&value).unwrap();
            assert_eq!(decoded, result, "Value round trip must be exact");

            // And through JSON text — the real persistence path.
            let json = serde_json::to_string(&value).unwrap();
            let reparsed = serde_json::from_str(&json).unwrap();
            let decoded = decode_cell_result(&reparsed).unwrap();
            assert_eq!(decoded, result, "JSON round trip must be bit-identical");
            assert_eq!(
                decoded.comparison.baseline.report.l1d_hit_rate.to_bits(),
                result.comparison.baseline.report.l1d_hit_rate.to_bits(),
            );
        }
    }

    #[test]
    fn hit_rates_round_trip_exactly_even_when_display_would_not() {
        // A hit rate with no short decimal form: persisted as raw bits,
        // so the text round trip cannot perturb it.
        let mut result = sample_results().remove(0);
        result.comparison.proposed.report.l1d_hit_rate = 0.1 + 0.2; // 0.30000000000000004
        result.comparison.proposed.report.l2_hit_rate = f64::from_bits(0x3FD5_5555_5555_5555);
        let json = serde_json::to_string(&encode_cell_result(&result)).unwrap();
        let decoded = decode_cell_result(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(decoded, result);
    }

    #[test]
    fn decode_rejects_malformed_records() {
        let good = encode_cell_result(&sample_results().remove(0));
        assert!(decode_cell_result(&good).is_ok());

        let mut wrong_version = good.clone();
        if let Value::Object(fields) = &mut wrong_version {
            fields[0].1 = Value::UInt(999);
        }
        assert!(decode_cell_result(&wrong_version)
            .unwrap_err()
            .contains("version"));

        let mut missing = good.clone();
        if let Value::Object(fields) = &mut missing {
            fields.retain(|(k, _)| k != "baseline");
        }
        assert!(decode_cell_result(&missing)
            .unwrap_err()
            .contains("baseline"));

        assert!(decode_cell_result(&Value::Null).is_err());
        assert!(algorithm_from_name("gpu").is_err());
        assert!(dataflow_from_name("x").is_err());
    }

    #[test]
    fn tags_round_trip_every_variant() {
        for a in Algorithm::ALL {
            assert_eq!(algorithm_from_name(algorithm_name(a)).unwrap(), a);
        }
        for d in Dataflow::ALL {
            assert_eq!(dataflow_from_name(dataflow_name(d)).unwrap(), d);
        }
    }
}
