//! Content addressing for sweep cells: a stable, version-tagged digest
//! over everything that determines a [`CellResult`].
//!
//! The sweep service keys its persistent store by
//! [`config_digest`]`(cell, cfg)`. Two invariants carry the whole
//! design:
//!
//! 1. **Determinism across processes and sessions** — the digest is
//!    FNV-1a-128 over a canonical little-endian byte encoding of the
//!    cell and campaign configuration, so it never depends on pointer
//!    values, hash-map order or `DefaultHasher` seeds.
//! 2. **Pinned inputs** — every field that changes simulated results
//!    feeds the digest; fields that cannot (the `verify` cross-check
//!    flag and the `shard_size` referee setting are observers, and
//!    `params.dataflow` is overridden per cell by
//!    [`crate::sweep::run_cell`]) are deliberately excluded so toggling
//!    them still hits the cache. [`CONFIG_DIGEST_VERSION`] is hashed
//!    first; bump it whenever the encoding or the simulator's observable
//!    behaviour changes, and the old store entries become misses instead
//!    of stale hits. Golden digests in the unit tests pin the encoding
//!    so accidental drift breaks CI rather than silently splitting the
//!    cache.
//!
//! [`CellResult`]: crate::sweep::CellResult

use crate::experiment::{Algorithm, ExperimentConfig};
use crate::sweep::SweepCell;
use indexmac_kernels::Dataflow;
use std::fmt;
use std::str::FromStr;

/// Version tag mixed into every digest. Bump on any change to the
/// encoding below **or** to simulated behaviour (timing models, kernel
/// builders, operand generation) — stored results are only valid for
/// the code that produced them.
pub const CONFIG_DIGEST_VERSION: u32 = 1;

/// A 128-bit content digest, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl FromStr for Digest {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(format!("digest must be 32 hex digits, got {}", s.len()));
        }
        u128::from_str_radix(s, 16)
            .map(Digest)
            .map_err(|e| format!("invalid digest '{s}': {e}"))
    }
}

/// Incremental FNV-1a-128 hasher over a canonical byte stream.
///
/// FNV is not cryptographic; the store treats collisions as
/// correctness-irrelevant (a collision would serve the wrong cell's
/// result, but at 2^-64 birthday odds across realistic sweep volumes
/// this is far below hardware error rates).
#[derive(Debug, Clone)]
pub struct DigestHasher {
    state: u128,
}

const FNV_OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

impl DigestHasher {
    /// A hasher seeded with the FNV offset basis and the version tag.
    pub fn new() -> Self {
        let mut h = Self {
            state: FNV_OFFSET_BASIS,
        };
        h.write_u32(CONFIG_DIGEST_VERSION);
        h
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u32` in little-endian canonical form.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian canonical form.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64` (platform-independent).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The accumulated digest.
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

impl Default for DigestHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable one-byte tag of an [`Algorithm`]. Exhaustive on purpose: a
/// new kernel variant fails to compile here until it gets a tag, so the
/// digest can never silently alias two algorithms.
fn algorithm_tag(a: Algorithm) -> u8 {
    match a {
        Algorithm::Dense => 0,
        Algorithm::RowWiseSpmm => 1,
        Algorithm::IndexMac => 2,
        Algorithm::IndexMac2 => 3,
        Algorithm::ScalarIndexed => 4,
    }
}

/// Stable one-byte tag of a [`Dataflow`].
fn dataflow_tag(d: Dataflow) -> u8 {
    match d {
        Dataflow::AStationary => 0,
        Dataflow::BStationary => 1,
        Dataflow::CStationary => 2,
    }
}

/// Stable one-byte tag of a timing backend.
fn timing_tag(t: indexmac_vpu::TimingKind) -> u8 {
    match t {
        indexmac_vpu::TimingKind::InOrder => 0,
        indexmac_vpu::TimingKind::Pipelined => 1,
        indexmac_vpu::TimingKind::OutOfOrder => 2,
    }
}

/// The content digest of one `(cell, campaign)` pair: the store key
/// under which the cell's [`CellResult`](crate::sweep::CellResult) is
/// cached.
///
/// Covers the cell coordinates (shape, pattern, dataflow, seed) and
/// every campaign field that reaches the simulation: algorithms on both
/// comparison sides, precision (SEW), LMUL, tile rows, unroll, the
/// instruction-limit guard, the GEMM caps, the full processor model
/// (including the timing backend and memory hierarchy). Excludes
/// `cfg.verify`, `cfg.shard_size` (pure cross-checks — they can fail a
/// run but never change a returned result) and `cfg.params.dataflow`
/// (overridden by the cell's own dataflow).
pub fn config_digest(cell: &SweepCell, cfg: &ExperimentConfig) -> Digest {
    let mut h = DigestHasher::new();

    // Cell coordinates.
    h.write_usize(cell.dims.rows);
    h.write_usize(cell.dims.inner);
    h.write_usize(cell.dims.cols);
    h.write_usize(cell.pattern.n());
    h.write_usize(cell.pattern.m());
    h.write(&[dataflow_tag(cell.dataflow)]);
    h.write_u64(cell.seed);

    // Campaign: what runs and how it is measured.
    h.write(&[algorithm_tag(cfg.baseline), algorithm_tag(cfg.proposed)]);
    h.write_usize(cfg.precision.bits());
    h.write_usize(cfg.lmul);
    h.write_usize(cfg.tile_rows);
    h.write_usize(cfg.params.unroll);
    h.write_u64(cfg.max_instructions);
    h.write_usize(cfg.caps.max_rows);
    h.write_usize(cfg.caps.max_inner);
    h.write_usize(cfg.caps.max_cols);

    // Processor model (paper Table I and every override).
    let sim = &cfg.sim;
    h.write_usize(sim.vlen_bits);
    h.write_usize(sim.lanes);
    h.write_usize(sim.vq_depth);
    h.write_usize(sim.vlq_entries);
    h.write_usize(sim.vsq_entries);
    h.write_u32(sim.vdispatch_per_cycle);
    h.write(&[timing_tag(sim.timing)]);
    h.write_u32(sim.issue_width);
    h.write_usize(sim.rob_entries);
    h.write_usize(sim.rs_entries);
    h.write_usize(sim.lsq_entries);
    h.write_u64(sim.branch_taken_penalty);
    h.write_u64(sim.alu_latency);
    h.write_u64(sim.mul_latency);
    h.write_u64(sim.varith_latency);
    h.write_u64(sim.vmac_latency);
    h.write_u64(sim.vslide_latency);
    h.write_u64(sim.v2s_latency);

    // Memory hierarchy.
    let m = &sim.hierarchy;
    for cache in [&m.l1d, &m.l2] {
        h.write_usize(cache.size_bytes);
        h.write_usize(cache.ways);
        h.write_usize(cache.line_bytes);
    }
    h.write_u64(m.l1_latency);
    h.write_u64(m.l2_latency);
    h.write_usize(m.l2_banks);
    h.write_u64(m.l2_bank_occupancy);
    h.write_u64(m.dram.latency);
    h.write_u64(m.dram.cycles_per_line);

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use indexmac_kernels::GemmDims;
    use indexmac_sparse::NmPattern;
    use indexmac_vpu::TimingKind;

    fn cell() -> SweepCell {
        SweepCell {
            dims: GemmDims {
                rows: 8,
                inner: 64,
                cols: 32,
            },
            pattern: NmPattern::P1_4,
            dataflow: Dataflow::BStationary,
            seed: 7,
        }
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let cfg = ExperimentConfig::fast();
        let d = config_digest(&cell(), &cfg);
        assert_eq!(d, config_digest(&cell(), &cfg), "same inputs, same digest");

        // Every axis the store must distinguish moves the digest.
        let mut other = cell();
        other.seed = 8;
        assert_ne!(d, config_digest(&other, &cfg));
        let mut other = cell();
        other.pattern = NmPattern::P2_4;
        assert_ne!(d, config_digest(&other, &cfg));
        let mut other = cell();
        other.dims.cols = 33;
        assert_ne!(d, config_digest(&other, &cfg));
        let mut other = cell();
        other.dataflow = Dataflow::AStationary;
        assert_ne!(d, config_digest(&other, &cfg));

        let quant = config_digest(
            &cell(),
            &ExperimentConfig {
                caps: cfg.caps,
                ..ExperimentConfig::quantized(crate::experiment::Precision::I8)
            },
        );
        assert_ne!(d, quant);
        assert_ne!(
            d,
            config_digest(&cell(), &cfg.with_timing(TimingKind::OutOfOrder))
        );
        let mut wide = cfg;
        wide.sim = wide.sim.with_vlen(1024);
        assert_ne!(d, config_digest(&cell(), &wide));
        let mut grouped = cfg;
        grouped.lmul = 2;
        assert_ne!(d, config_digest(&cell(), &grouped));
    }

    #[test]
    fn observer_fields_do_not_move_the_digest() {
        let cfg = ExperimentConfig::fast();
        let d = config_digest(&cell(), &cfg);
        let mut observed = cfg;
        observed.verify = false;
        observed.shard_size = Some(1024);
        observed.params.dataflow = Dataflow::CStationary; // per-cell override wins
        assert_eq!(
            d,
            config_digest(&cell(), &observed),
            "verify/shard_size/params.dataflow are observers, not inputs"
        );
    }

    #[test]
    fn digest_renders_and_parses_as_32_hex() {
        let d = config_digest(&cell(), &ExperimentConfig::fast());
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(s.parse::<Digest>().unwrap(), d);
        assert!("xyz".parse::<Digest>().is_err());
        assert!("g".repeat(32).parse::<Digest>().is_err());
        assert_eq!(
            Digest(0).to_string(),
            "00000000000000000000000000000000",
            "leading zeroes are preserved"
        );
    }

    /// Golden digests: pin the canonical encoding. If this test fails
    /// without an intentional encoding change, the hash inputs drifted
    /// and a deployed store would silently split; if the change is
    /// intentional, bump [`CONFIG_DIGEST_VERSION`] and re-pin.
    #[test]
    fn golden_digest_matrix() {
        let fast = ExperimentConfig::fast();
        let cases: Vec<(SweepCell, ExperimentConfig, &str)> = vec![
            (cell(), fast, "300f16dc1fc074eb7ebb38cb350399fd"),
            (
                SweepCell {
                    seed: 0xD47E_2024,
                    ..cell()
                },
                fast,
                "39771c5b0624a8f7ce68b9c9b2b760b2",
            ),
            (
                SweepCell {
                    pattern: NmPattern::P2_4,
                    ..cell()
                },
                ExperimentConfig::paper(),
                "95b79306a20dee069321e9b41c21d63a",
            ),
            (
                cell(),
                ExperimentConfig {
                    caps: fast.caps,
                    ..ExperimentConfig::second_generation(2)
                },
                "0aa7b5b0c170ab7e5819e85a7a99997c",
            ),
            (
                cell(),
                fast.with_timing(TimingKind::Pipelined),
                "0f5844807bae17cb6975cb86a6d21eea",
            ),
        ];
        for (cell, cfg, want) in cases {
            let got = config_digest(&cell, &cfg).to_string();
            assert_eq!(
                got, want,
                "digest drift for cell {cell:?}: update CONFIG_DIGEST_VERSION \
                 if the encoding change is intentional"
            );
        }
    }
}
