//! # IndexMAC
//!
//! A full-system reproduction of *"IndexMAC: A Custom RISC-V Vector
//! Instruction to Accelerate Structured-Sparse Matrix Multiplications"*
//! (DATE 2024): the custom `vindexmac.vx` instruction, the decoupled
//! vector-processor model it was evaluated on, the three kernels of the
//! paper, and the CNN workloads of its evaluation.
//!
//! This crate is the top-level public API. It re-exports the substrate
//! crates and provides the experiment drivers behind the paper's
//! figures:
//!
//! * [`experiment`] — run one (layer, sparsity, algorithm) simulation,
//!   or a whole CNN comparison (Fig. 4/5/6 building blocks);
//! * [`sweep`] — fan comparisons out over (pattern × dims × dataflow)
//!   grids on a rayon thread pool, with deterministic per-cell seeds;
//! * [`seqlen`] — sequence-length scaling analysis for the transformer
//!   workload family;
//! * [`table`] — plain-text table rendering used by the bench harnesses.
//!
//! # Quickstart
//!
//! ```
//! use indexmac::experiment::{compare_gemm, ExperimentConfig};
//! use indexmac::kernels::GemmDims;
//! use indexmac::sparse::NmPattern;
//!
//! let cfg = ExperimentConfig::fast();
//! let dims = GemmDims { rows: 16, inner: 64, cols: 32 };
//! let cmp = compare_gemm(dims, NmPattern::P1_4, &cfg)?;
//! assert!(cmp.speedup() > 1.0, "vindexmac must outperform Row-Wise-SpMM");
//! assert!(cmp.mem_ratio() < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod digest;
pub mod experiment;
pub mod record;
pub mod seqlen;
pub mod sweep;
pub mod table;

pub use analysis::{analyze, Bottleneck, BoundKind};
pub use digest::{config_digest, Digest, CONFIG_DIGEST_VERSION};
pub use experiment::{
    compare_gemm, compare_layer, compare_model, decode_cache_stats, reset_decode_cache, run_gemm,
    Algorithm, DecodeCacheStats, ExperimentConfig, GemmComparison, LayerResult, ModelComparison,
};
pub use seqlen::{seqlen_scaling, SeqLenPoint, SeqLenScaling};
pub use sweep::{run_grid, SweepCell, SweepGrid, SweepResult};

pub use indexmac_isa as isa;
pub use indexmac_kernels as kernels;
pub use indexmac_mem as mem;
pub use indexmac_models as models;
pub use indexmac_sparse as sparse;
pub use indexmac_vpu as vpu;
