//! Memory-system substrate: main memory, caches, DRAM timing and the
//! combined hierarchy of Table I of the IndexMAC paper.
//!
//! * [`MainMemory`] — sparse, page-based byte-addressable backing store
//!   (functional state).
//! * [`Cache`] — set-associative write-back/write-allocate cache model
//!   with LRU replacement (timing + hit/miss state, no data: the data
//!   lives in [`MainMemory`], as caches are performance-transparent).
//! * [`DramModel`] — DDR4-2400-style latency + line-bandwidth gate.
//! * [`MemoryHierarchy`] — the Table I arrangement: scalar L1D -> shared
//!   L2 -> DRAM, with the vector engine port attached *directly to L2*
//!   ("the vector engine is connected directly to the L2 cache").
//! * [`MemStats`] — access counters behind the paper's Fig. 6.
//!
//! # Example
//!
//! ```
//! use indexmac_mem::{MainMemory, MemoryHierarchy, HierarchyConfig};
//!
//! let mut mem = MainMemory::new();
//! mem.write_f32(0x1000, 3.5);
//! assert_eq!(mem.read_f32(0x1000), 3.5);
//!
//! let mut h = MemoryHierarchy::new(HierarchyConfig::table_i());
//! let first = h.scalar_read(0x1000, 4, 0);   // cold: miss to DRAM
//! let second = h.scalar_read(0x1000, 4, 100); // warm: L1 hit
//! assert!(second < first);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod memory;
pub mod stats;

pub use cache::{AccessKind, Cache, CacheConfig};
pub use dram::{DramConfig, DramModel};
pub use hierarchy::{HierarchyConfig, MemoryHierarchy};
pub use memory::{MainMemory, PageDelta, PAGE_BYTES};
pub use stats::MemStats;
