//! DDR4-style main-memory timing: fixed access latency plus a
//! line-granular bandwidth gate.
//!
//! The paper's Table I specifies "DDR4-2400" without further detail, so
//! the model keeps the two first-order effects that matter for the
//! relative comparison: a fixed access latency (row activation + CAS +
//! controller, expressed in core cycles) and a maximum line rate derived
//! from the channel bandwidth (DDR4-2400 x64 = 19.2 GB/s; at a 2 GHz
//! core clock a 64-byte line every ~6.7 cycles).

/// DRAM timing parameters, in core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Latency of an isolated access (request to first data), cycles.
    pub latency: u64,
    /// Minimum spacing between consecutive line transfers (bandwidth
    /// gate), cycles per 64-byte line.
    pub cycles_per_line: u64,
}

impl DramConfig {
    /// DDR4-2400 at a 2 GHz core: ~45 ns loaded latency -> 90 cycles;
    /// 19.2 GB/s -> 64 B every 6.67 cycles, rounded to 7.
    pub fn ddr4_2400() -> Self {
        Self {
            latency: 90,
            cycles_per_line: 7,
        }
    }
}

/// Bandwidth-limited DRAM channel.
///
/// `access(now)` returns the completion time of a line transfer that is
/// *requested* at cycle `now`; back-to-back requests are serialised at
/// `cycles_per_line` spacing to model channel occupancy.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    /// Earliest cycle at which the channel can start another transfer.
    next_free: u64,
    /// Total line transfers served.
    lines_served: u64,
    /// Total cycles requests spent queued behind the bandwidth gate.
    queue_cycles: u64,
}

impl DramModel {
    /// Creates a channel with the given timing.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            cfg,
            next_free: 0,
            lines_served: 0,
            queue_cycles: 0,
        }
    }

    /// The configured timing parameters.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Serves one 64-byte line requested at cycle `now`; returns the
    /// cycle at which the data is available.
    pub fn access(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_free);
        self.queue_cycles += start - now;
        self.next_free = start + self.cfg.cycles_per_line;
        self.lines_served += 1;
        start + self.cfg.latency
    }

    /// Number of line transfers served so far.
    pub fn lines_served(&self) -> u64 {
        self.lines_served
    }

    /// Cycles requests spent waiting for channel bandwidth.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_access_pays_latency_only() {
        let mut d = DramModel::new(DramConfig {
            latency: 100,
            cycles_per_line: 10,
        });
        assert_eq!(d.access(50), 150);
        assert_eq!(d.queue_cycles(), 0);
    }

    #[test]
    fn back_to_back_requests_serialise() {
        let mut d = DramModel::new(DramConfig {
            latency: 100,
            cycles_per_line: 10,
        });
        assert_eq!(d.access(0), 100);
        // Second request at the same cycle queues behind the first line.
        assert_eq!(d.access(0), 110);
        assert_eq!(d.access(0), 120);
        assert_eq!(d.lines_served(), 3);
        assert_eq!(d.queue_cycles(), 10 + 20);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut d = DramModel::new(DramConfig {
            latency: 100,
            cycles_per_line: 10,
        });
        assert_eq!(d.access(0), 100);
        assert_eq!(d.access(10), 110);
        assert_eq!(d.access(25), 125);
        assert_eq!(d.queue_cycles(), 0);
    }

    #[test]
    fn ddr4_preset_plausible() {
        let c = DramConfig::ddr4_2400();
        assert!(c.latency >= 50 && c.latency <= 200);
        assert!(c.cycles_per_line >= 4 && c.cycles_per_line <= 16);
    }
}
