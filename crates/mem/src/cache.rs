//! Set-associative cache model with LRU replacement.
//!
//! The model tracks tags, validity and dirtiness — not data. Simulated
//! data always lives in [`crate::MainMemory`]; caches only decide *how
//! long* an access takes and what traffic it generates, which is all the
//! timing model needs (caches are architecturally transparent).

use std::fmt;

/// Static parameters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets (`size / (ways * line)`).
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Paper Table I L1D: 64 KiB, 4-way, 64 B lines.
    pub fn table_i_l1d() -> Self {
        Self {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// Paper Table I L2: 512 KiB, 8-way, 64 B lines.
    pub fn table_i_l2() -> Self {
        Self {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (write-allocate: misses fetch the line first).
    Write,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty victim had to be written back.
    pub writeback: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

/// Running counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Victim lines evicted (valid line replaced).
    pub evictions: u64,
    /// Dirty victim lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// A write-back, write-allocate, LRU set-associative cache.
///
/// # Example
///
/// ```
/// use indexmac_mem::{Cache, CacheConfig, AccessKind};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64 });
/// assert!(!c.access(0x0, AccessKind::Read).hit);  // cold miss
/// assert!(c.access(0x4, AccessKind::Read).hit);   // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * ways, set-major
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics unless sets, ways and line size are non-zero and the line
    /// size and set count are powers of two (required for bit-sliced
    /// indexing, as in real hardware).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "associativity must be non-zero");
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert_eq!(
            sets * cfg.ways * cfg.line_bytes,
            cfg.size_bytes,
            "size must factor exactly into sets*ways*line"
        );
        Self {
            cfg,
            lines: vec![Line::default(); sets * cfg.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The line-aligned base address containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        let line = addr / self.cfg.line_bytes as u64;
        (line as usize) & (self.cfg.sets() - 1)
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes as u64 / self.cfg.sets() as u64
    }

    /// Checks residency without updating any state.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.lines[set * self.cfg.ways..(set + 1) * self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs an access, updating LRU/dirty state and statistics.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        self.clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.cfg.ways;
        let base = set * ways;

        // Hit path.
        for i in base..base + ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].stamp = self.clock;
                if kind == AccessKind::Write {
                    self.lines[i].dirty = true;
                }
                self.stats.hits += 1;
                return AccessResult {
                    hit: true,
                    writeback: false,
                };
            }
        }

        // Miss: pick invalid way, else LRU victim.
        self.stats.misses += 1;
        let victim = (base..base + ways)
            .min_by_key(|&i| {
                if self.lines[i].valid {
                    self.lines[i].stamp
                } else {
                    0
                }
            })
            .expect("ways > 0");
        let mut writeback = false;
        if self.lines[victim].valid {
            self.stats.evictions += 1;
            if self.lines[victim].dirty {
                self.stats.writebacks += 1;
                writeback = true;
            }
        }
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            stamp: self.clock,
        };
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Invalidates every line and clears dirtiness (statistics retained).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats;
        write!(
            f,
            "{}KiB {}-way {}B-line cache: {} hits / {} misses ({:.1}% hit rate)",
            self.cfg.size_bytes / 1024,
            self.cfg.ways,
            self.cfg.line_bytes,
            s.hits,
            s.misses,
            s.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x0, AccessKind::Read).hit);
        assert!(c.access(0x3F, AccessKind::Read).hit); // same 64B line
        assert!(!c.access(0x40, AccessKind::Read).hit); // next line
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets*line = 256B).
        c.access(0x000, AccessKind::Read);
        c.access(0x100, AccessKind::Read);
        c.access(0x000, AccessKind::Read); // refresh line 0
        c.access(0x200, AccessKind::Read); // evicts 0x100 (LRU)
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn writeback_only_for_dirty_victims() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Write); // dirty
        c.access(0x100, AccessKind::Read); // clean
        let r = c.access(0x200, AccessKind::Read); // evicts dirty 0x000
        assert!(r.writeback);
        let r = c.access(0x300, AccessKind::Read); // evicts clean 0x100
        assert!(!r.writeback);
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Read); // clean fill
        c.access(0x000, AccessKind::Write); // dirty on hit
        c.access(0x100, AccessKind::Read);
        let r = c.access(0x200, AccessKind::Read); // evict 0x000
        assert!(r.writeback);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Read);
        let before = c.stats();
        assert!(c.probe(0x000));
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn invalidate_clears_lines() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Write);
        assert_eq!(c.valid_lines(), 1);
        c.invalidate_all();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn table_i_geometries() {
        let l1 = Cache::new(CacheConfig::table_i_l1d());
        assert_eq!(l1.config().sets(), 256);
        let l2 = Cache::new(CacheConfig::table_i_l2());
        assert_eq!(l2.config().sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 3 * 64 * 2,
            ways: 2,
            line_bytes: 64,
        });
    }

    #[test]
    fn full_capacity_no_conflict() {
        // Sequential fill of the whole cache must not evict anything.
        let mut c = tiny();
        for i in 0..8 {
            c.access(i * 64, AccessKind::Read);
        }
        assert_eq!(c.valid_lines(), 8);
        assert_eq!(c.stats().evictions, 0);
        // Re-touch all: all hits.
        for i in 0..8 {
            assert!(c.access(i * 64, AccessKind::Read).hit);
        }
        assert_eq!(c.stats().hit_rate(), 0.5);
    }

    #[test]
    fn display_smoke() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        assert!(c.to_string().contains("hit rate"));
    }
}
