//! The Table I memory hierarchy: scalar L1D -> shared, banked L2 ->
//! DDR4, with the vector engine's load/store port attached directly to
//! the L2 (bypassing the L1, as in the paper's decoupled design).

use crate::cache::{AccessKind, Cache, CacheConfig};
use crate::dram::{DramConfig, DramModel};
use crate::stats::MemStats;

/// Latencies and geometry of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// L1D hit latency in cycles (Table I: 2).
    pub l1_latency: u64,
    /// L2 hit latency in cycles (Table I: 8).
    pub l2_latency: u64,
    /// Number of independent L2 banks (Table I: 8).
    pub l2_banks: usize,
    /// Cycles a bank is occupied per line access.
    pub l2_bank_occupancy: u64,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// The exact configuration of Table I of the paper.
    pub fn table_i() -> Self {
        Self {
            l1d: CacheConfig::table_i_l1d(),
            l2: CacheConfig::table_i_l2(),
            l1_latency: 2,
            l2_latency: 8,
            l2_banks: 8,
            l2_bank_occupancy: 2,
            dram: DramConfig::ddr4_2400(),
        }
    }
}

/// Stateful hierarchy combining the caches, banks and DRAM channel.
///
/// Every access method takes the current cycle (`now`) and returns the
/// *latency* in cycles until the data is available (or accepted, for
/// stores). Bank and DRAM contention are tracked against absolute time,
/// so interleaved callers see realistic queuing.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l2: Cache,
    dram: DramModel,
    /// Earliest free cycle per L2 bank.
    bank_free: Vec<u64>,
    stats: MemStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the cache geometries are invalid (see [`Cache::new`]) or
    /// `l2_banks` is zero.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.l2_banks > 0, "need at least one L2 bank");
        Self {
            cfg,
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            dram: DramModel::new(cfg.dram),
            bank_free: vec![0; cfg.l2_banks],
            stats: MemStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> HierarchyConfig {
        self.cfg
    }

    /// Program-level traffic counters.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// L1D cache state (hit/miss counters etc.).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// L2 cache state.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Cycles DRAM requests spent queued on channel bandwidth.
    pub fn dram_queue_cycles(&self) -> u64 {
        self.dram.queue_cycles()
    }

    fn bank_of(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.l2.line_bytes as u64) as usize) % self.cfg.l2_banks
    }

    /// One line access at the L2 level (bank arbitration + L2 lookup +
    /// DRAM on miss). Returns the completion cycle.
    fn l2_line_access(&mut self, line_addr: u64, kind: AccessKind, now: u64) -> u64 {
        let bank = self.bank_of(line_addr);
        let start = now.max(self.bank_free[bank]);
        self.bank_free[bank] = start + self.cfg.l2_bank_occupancy;
        let res = self.l2.access(line_addr, kind);
        if res.writeback {
            // Dirty victim drains to DRAM; consumes channel bandwidth but
            // is off the critical path of this access.
            self.dram.access(start);
            self.stats.dram_writes += 1;
        }
        if res.hit {
            start + self.cfg.l2_latency
        } else {
            self.stats.dram_reads += 1;

            self.dram.access(start + self.cfg.l2_latency)
        }
    }

    /// Iterates the 64-byte lines covered by `[addr, addr+size)`.
    fn lines(&self, addr: u64, size: u64) -> impl Iterator<Item = u64> {
        let lb = self.cfg.l2.line_bytes as u64;
        let first = addr & !(lb - 1);
        let last = (addr + size.max(1) - 1) & !(lb - 1);
        (0..=(last - first) / lb).map(move |i| first + i * lb)
    }

    /// Scalar load through L1D. Returns latency in cycles.
    pub fn scalar_read(&mut self, addr: u64, size: u64, now: u64) -> u64 {
        self.stats.scalar_loads += 1;
        self.scalar_access(addr, size, AccessKind::Read, now)
    }

    /// Scalar store through L1D (write-allocate). Returns latency.
    pub fn scalar_write(&mut self, addr: u64, size: u64, now: u64) -> u64 {
        self.stats.scalar_stores += 1;
        self.scalar_access(addr, size, AccessKind::Write, now)
    }

    fn scalar_access(&mut self, addr: u64, size: u64, kind: AccessKind, now: u64) -> u64 {
        let mut done = now;
        let lines: Vec<u64> = self.lines(addr, size).collect();
        for line in lines {
            let res = self.l1d.access(line, kind);
            let completion = if res.hit {
                now + self.cfg.l1_latency
            } else {
                // L1 fill from L2 (plus DRAM beneath on L2 miss).
                let l2_done =
                    self.l2_line_access(line, AccessKind::Read, now + self.cfg.l1_latency);
                if res.writeback {
                    // L1 dirty victim drains into L2 off the critical path.
                    self.l2_line_access(line, AccessKind::Write, l2_done);
                }
                l2_done
            };
            done = done.max(completion);
        }
        done - now
    }

    /// Vector unit-stride load: direct to the banked L2. Returns latency.
    pub fn vector_read(&mut self, addr: u64, size: u64, now: u64) -> u64 {
        self.stats.vector_loads += 1;
        let mut done = now;
        let lines: Vec<u64> = self.lines(addr, size).collect();
        for line in lines {
            let completion = self.l2_line_access(line, AccessKind::Read, now);
            done = done.max(completion);
        }
        done - now
    }

    /// Vector unit-stride store: direct to the banked L2. Returns latency
    /// until the store is accepted.
    pub fn vector_write(&mut self, addr: u64, size: u64, now: u64) -> u64 {
        self.stats.vector_stores += 1;
        let mut done = now;
        let lines: Vec<u64> = self.lines(addr, size).collect();
        for line in lines {
            let completion = self.l2_line_access(line, AccessKind::Write, now);
            done = done.max(completion);
        }
        done - now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::table_i())
    }

    #[test]
    fn scalar_l1_hit_after_fill() {
        let mut m = h();
        let cold = m.scalar_read(0x1000, 4, 0);
        assert!(cold > m.config().l1_latency + m.config().l2_latency); // went to DRAM
        let warm = m.scalar_read(0x1000, 4, 1000);
        assert_eq!(warm, m.config().l1_latency);
        assert_eq!(m.stats().scalar_loads, 2);
    }

    #[test]
    fn vector_bypasses_l1() {
        let mut m = h();
        // Warm the line via the vector port.
        m.vector_read(0x2000, 64, 0);
        // A later vector access hits in L2, not L1.
        let lat = m.vector_read(0x2000, 64, 1000);
        assert_eq!(lat, m.config().l2_latency);
        // And the L1 has never seen the line.
        assert!(!m.l1d().probe(0x2000));
    }

    #[test]
    fn vector_l2_hit_latency_matches_table_i() {
        let mut m = h();
        m.vector_read(0x40, 64, 0);
        assert_eq!(m.vector_read(0x40, 64, 500), 8);
    }

    #[test]
    fn bank_contention_serialises_same_bank() {
        let mut m = h();
        // Same line twice at the same instant: second waits for the bank.
        m.vector_read(0x3000, 64, 0);
        m.vector_read(0x3000, 64, 2_000);
        let a = m.vector_read(0x3000, 64, 10_000);
        let b = m.vector_read(0x3000, 64, 10_000);
        assert_eq!(a, 8);
        assert!(b > a, "second same-bank access must queue (got {b} vs {a})");
    }

    #[test]
    fn different_banks_overlap() {
        let mut m = h();
        // Lines 0 and 1 map to different banks; warm both.
        m.vector_read(0x0, 64, 0);
        m.vector_read(0x40, 64, 1_000);
        let a = m.vector_read(0x0, 64, 10_000);
        let b = m.vector_read(0x40, 64, 10_000);
        assert_eq!(a, 8);
        assert_eq!(b, 8, "different banks must not serialise");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut m = h();
        let lat = m.scalar_read(0x103C, 8, 0); // crosses 0x1040 boundary
        assert!(lat > 0);
        // Both lines now resident in L1.
        assert!(m.l1d().probe(0x1000));
        assert!(m.l1d().probe(0x1040));
    }

    #[test]
    fn store_counts_and_dram_writeback_path() {
        let mut m = h();
        // Dirty a line in L2 via vector store, then evict it by filling
        // the set; the writeback must be counted.
        m.vector_write(0x0, 64, 0);
        let sets = m.config().l2.sets() as u64;
        let stride = 64 * sets;
        for w in 1..=8 {
            m.vector_read(w * stride, 64, w * 10_000);
        }
        assert_eq!(m.stats().vector_stores, 1);
        assert!(m.stats().dram_writes >= 1, "dirty eviction must write back");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = h();
        m.scalar_read(0, 4, 0);
        m.scalar_write(8, 4, 10);
        m.vector_read(64, 64, 20);
        m.vector_write(128, 64, 30);
        let s = m.stats();
        assert_eq!(s.total_accesses(), 4);
        assert_eq!(s.vector_accesses(), 2);
    }
}
