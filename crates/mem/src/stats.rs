//! Memory-traffic counters — the data behind the paper's Fig. 6.

/// Counters of every memory operation issued by a simulated program.
///
/// "Memory accesses" in the paper's Fig. 6 are the loads and stores the
/// *program* executes (each unit-stride vector access of a 512-bit row
/// slice touches exactly one 64-byte line, so instruction-level and
/// line-level counting coincide for the kernels under study).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Scalar loads issued (L1D path).
    pub scalar_loads: u64,
    /// Scalar stores issued (L1D path).
    pub scalar_stores: u64,
    /// Vector loads issued (direct-to-L2 path).
    pub vector_loads: u64,
    /// Vector stores issued (direct-to-L2 path).
    pub vector_stores: u64,
    /// 64-byte lines requested from DRAM (reads).
    pub dram_reads: u64,
    /// 64-byte lines written back to DRAM.
    pub dram_writes: u64,
}

impl MemStats {
    /// Total program-issued memory accesses (Fig. 6 numerator).
    pub fn total_accesses(&self) -> u64 {
        self.scalar_loads + self.scalar_stores + self.vector_loads + self.vector_stores
    }

    /// Total vector-side accesses.
    pub fn vector_accesses(&self) -> u64 {
        self.vector_loads + self.vector_stores
    }

    /// Total DRAM line traffic.
    pub fn dram_lines(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }

    /// Element-wise sum with another counter set.
    pub fn merged(&self, other: &MemStats) -> MemStats {
        MemStats {
            scalar_loads: self.scalar_loads + other.scalar_loads,
            scalar_stores: self.scalar_stores + other.scalar_stores,
            vector_loads: self.vector_loads + other.vector_loads,
            vector_stores: self.vector_stores + other.vector_stores,
            dram_reads: self.dram_reads + other.dram_reads,
            dram_writes: self.dram_writes + other.dram_writes,
        }
    }
}

impl std::fmt::Display for MemStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mem accesses: {} (scalar {}ld/{}st, vector {}ld/{}st), dram lines {}",
            self.total_accesses(),
            self.scalar_loads,
            self.scalar_stores,
            self.vector_loads,
            self.vector_stores,
            self.dram_lines()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = MemStats {
            scalar_loads: 3,
            scalar_stores: 2,
            vector_loads: 10,
            vector_stores: 5,
            dram_reads: 7,
            dram_writes: 1,
        };
        assert_eq!(s.total_accesses(), 20);
        assert_eq!(s.vector_accesses(), 15);
        assert_eq!(s.dram_lines(), 8);
    }

    #[test]
    fn merge_adds_fields() {
        let a = MemStats {
            scalar_loads: 1,
            vector_loads: 2,
            ..Default::default()
        };
        let b = MemStats {
            scalar_loads: 10,
            dram_writes: 4,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.scalar_loads, 11);
        assert_eq!(m.vector_loads, 2);
        assert_eq!(m.dram_writes, 4);
    }

    #[test]
    fn display_smoke() {
        assert!(MemStats::default().to_string().contains("mem accesses: 0"));
    }
}
