//! Sparse, page-based main-memory backing store (functional state).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Backing-store page granularity in bytes. Consumers planning
/// prefetches key off this: within a page accesses are contiguous in
/// one allocation (the hardware stream prefetcher covers them), while
/// crossing into a new page costs a fresh page-map lookup.
pub const PAGE_BYTES: u64 = PAGE_SIZE as u64;

/// Multiply-rotate hasher for page indices. The page table is probed
/// once per vector load/store on the decoded engine's hot path, and the
/// default SipHash costs more than the 128-byte copy it guards; page
/// indices are small sequential integers, for which one odd-constant
/// multiply (Fibonacci hashing) mixes the low bits into the table index
/// perfectly well. Deterministic across runs, unlike `RandomState` —
/// which sharded replay relies on anyway for its report merges.
#[derive(Default)]
pub struct PageIndexHasher(u64);

impl Hasher for PageIndexHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // High bits carry the mix; hashbrown derives its control bytes
        // and bucket index from them.
        self.0
    }
}

type PageHash = BuildHasherDefault<PageIndexHasher>;

/// A snapshot of whole-page contents, captured at a checkpoint so a
/// later consumer can reconstruct memory-as-of-that-moment by applying
/// deltas in order onto a base image ([`MainMemory::capture_pages`] /
/// [`MainMemory::apply_delta`]). Pages that were not resident when
/// captured are stored as all-zero pages, so applying a delta always
/// reproduces the captured bytes exactly — including the case where a
/// page was written and later reads must *not* see newer contents.
#[derive(Debug, Default, Clone)]
pub struct PageDelta {
    pages: Vec<(u64, Box<[u8; PAGE_SIZE]>)>,
}

impl PageDelta {
    /// Number of pages captured in this delta.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no pages were captured.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Snapshot footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }
}

/// Byte-addressable simulated memory, allocated lazily in 4 KiB pages.
///
/// Unwritten bytes read as zero, like freshly-mapped anonymous memory.
/// All multi-byte accessors are little-endian (RISC-V's byte order).
///
/// # Example
///
/// ```
/// use indexmac_mem::MainMemory;
///
/// let mut m = MainMemory::new();
/// m.write_u32(0x2000, 0xDEADBEEF);
/// assert_eq!(m.read_u32(0x2000), 0xDEADBEEF);
/// assert_eq!(m.read_u32(0x9999_0000), 0); // untouched memory is zero
/// ```
#[derive(Debug, Default, Clone)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, PageHash>,
    /// When `Some`, every page index mutated by a write accumulates
    /// here (checkpoint support for sharded execution). `None` keeps
    /// the common non-tracking write path branch-cheap.
    touched: Option<HashSet<u64, PageHash>>,
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn touch(&mut self, page: u64) {
        if let Some(t) = self.touched.as_mut() {
            t.insert(page);
        }
    }

    /// Starts recording which pages are mutated by writes. Clears any
    /// previously accumulated set.
    pub fn start_touch_tracking(&mut self) {
        self.touched = Some(HashSet::default());
    }

    /// Stops recording touched pages and drops the accumulated set.
    pub fn stop_touch_tracking(&mut self) {
        self.touched = None;
    }

    /// Drains the set of pages written since tracking started (or since
    /// the last take), returned sorted for determinism. Tracking stays
    /// enabled. Returns an empty list when tracking is off.
    pub fn take_touched_pages(&mut self) -> Vec<u64> {
        let mut v: Vec<u64> = match self.touched.as_mut() {
            Some(t) => t.drain().collect(),
            None => Vec::new(),
        };
        v.sort_unstable();
        v
    }

    /// Captures the current contents of the given pages into a
    /// [`PageDelta`]. Non-resident pages are captured as zero pages, so
    /// the delta always reproduces today's observable bytes when later
    /// applied over a different base image.
    pub fn capture_pages(&self, pages: &[u64]) -> PageDelta {
        PageDelta {
            pages: pages
                .iter()
                .map(|&idx| {
                    let content = match self.pages.get(&idx) {
                        Some(p) => p.clone(),
                        None => Box::new([0u8; PAGE_SIZE]),
                    };
                    (idx, content)
                })
                .collect(),
        }
    }

    /// Overwrites whole pages with the captured contents of `delta`.
    pub fn apply_delta(&mut self, delta: &PageDelta) {
        for (idx, content) in &delta.pages {
            self.pages.insert(*idx, content.clone());
            self.touch(*idx);
        }
    }

    /// Number of 4 KiB pages that have been touched by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.touch(addr >> PAGE_SHIFT);
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` bytes starting at `addr` (little-endian callers below).
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: whole access inside one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&p[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE {
            self.touch(addr >> PAGE_SHIFT);
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Drops every resident page, returning the memory to its
    /// freshly-constructed all-zero state. The page table's allocation
    /// is retained, so a reused simulator does not rebuild the map from
    /// scratch on every run (the warm-execution path resets memory once
    /// per experiment cell).
    pub fn clear(&mut self) {
        self.pages.clear();
        if let Some(t) = self.touched.as_mut() {
            t.clear();
        }
    }

    /// Bulk-reads `out.len()` bytes starting at `addr`, page-chunked:
    /// one page-table lookup per 4 KiB instead of one per byte, which is
    /// what makes whole-register vector loads cheap in the decoded
    /// engine. Unwritten bytes read as zero.
    pub fn read_slice(&self, addr: u64, out: &mut [u8]) {
        let mut done = 0usize;
        while done < out.len() {
            // Wrapping, to match the per-byte `read_bytes` semantics: a
            // slice spanning the top of the address space wraps to 0
            // instead of panicking in debug builds.
            let a = addr.wrapping_add(done as u64);
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(out.len() - done);
            match self.pages.get(&(a >> PAGE_SHIFT)) {
                Some(p) => out[done..done + n].copy_from_slice(&p[off..off + n]),
                None => out[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Hints the CPU to pull the cache lines backing `addr` (up to two:
    /// a whole-register vector access spans 128 bytes) closer to the
    /// core. Purely a performance hint — no architectural effect, no
    /// page allocation, silently nothing for non-resident pages or on
    /// targets without a prefetch instruction. The trace-compiled
    /// engine calls this for loads/stores whose addresses it proved
    /// constant at trace-build time, running a few ops ahead of
    /// execution so streaming accesses don't stall on DRAM.
    #[inline]
    pub fn prefetch(&self, addr: u64) {
        let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) else {
            return;
        };
        let off = (addr & PAGE_MASK) as usize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `off < PAGE_SIZE` by construction of the mask, and
        // `off + 64` is bounds-checked below, so both pointers lie
        // inside the page's 4 KiB allocation; `_mm_prefetch` is a pure
        // hint with no memory or register effects.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(page.as_ptr().cast::<i8>().add(off), _MM_HINT_T0);
            if off + 64 < PAGE_SIZE {
                _mm_prefetch(page.as_ptr().cast::<i8>().add(off + 64), _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (page, off);
        }
    }

    /// Bulk-writes `data` starting at `addr`, page-chunked (the store
    /// counterpart of [`MainMemory::read_slice`]).
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr.wrapping_add(done as u64);
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(data.len() - done);
            self.touch(a >> PAGE_SHIFT);
            let page = self
                .pages
                .entry(a >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `f32` (IEEE-754 bits at `addr`).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Bulk-writes a slice of `f32` values at consecutive addresses.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + (i * 4) as u64, *v);
        }
    }

    /// Bulk-reads `count` `f32` values from consecutive addresses.
    pub fn read_f32_slice(&self, addr: u64, count: usize) -> Vec<f32> {
        (0..count)
            .map(|i| self.read_f32(addr + (i * 4) as u64))
            .collect()
    }

    /// Bulk-writes a slice of `u32` values at consecutive addresses.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + (i * 4) as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_untouched() {
        let m = MainMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xFFFF_FFFF_FFF0), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn byte_roundtrip() {
        let mut m = MainMemory::new();
        m.write_u8(5, 0xAB);
        assert_eq!(m.read_u8(5), 0xAB);
        assert_eq!(m.read_u8(6), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn word_roundtrips_little_endian() {
        let mut m = MainMemory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 0x01);
        assert_eq!(m.read_u8(0x103), 0x04);
        assert_eq!(m.read_u16(0x100), 0x0201);
        m.write_u64(0x200, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x200), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u32(0x204), 0x1122_3344);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MainMemory::new();
        let addr = (1 << PAGE_SHIFT) - 2; // straddles the page boundary
        m.write_u32(addr, 0xCAFEBABE);
        assert_eq!(m.read_u32(addr), 0xCAFEBABE);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f32_roundtrip_including_specials() {
        let mut m = MainMemory::new();
        for (i, v) in [
            0.0f32,
            -0.0,
            1.5,
            -3.25e10,
            f32::INFINITY,
            f32::MIN_POSITIVE,
        ]
        .iter()
        .enumerate()
        {
            let a = 0x3000 + (i * 4) as u64;
            m.write_f32(a, *v);
            assert_eq!(m.read_f32(a).to_bits(), v.to_bits());
        }
        m.write_f32(0x4000, f32::NAN);
        assert!(m.read_f32(0x4000).is_nan());
    }

    #[test]
    fn slice_helpers() {
        let mut m = MainMemory::new();
        let vals = [1.0f32, 2.0, 3.0, 4.5];
        m.write_f32_slice(0x8000, &vals);
        assert_eq!(m.read_f32_slice(0x8000, 4), vals);
        m.write_u32_slice(0x9000, &[7, 8, 9]);
        assert_eq!(m.read_u32(0x9008), 9);
    }

    #[test]
    fn slice_reads_and_writes_cross_pages_and_match_bytes() {
        let mut m = MainMemory::new();
        let base = (1u64 << PAGE_SHIFT) - 7; // straddles a page boundary
        let data: Vec<u8> = (0..23u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(5))
            .collect();
        m.write_slice(base, &data);
        for (i, b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(base + i as u64), *b, "byte {i}");
        }
        let mut back = vec![0xAA; data.len()];
        m.read_slice(base, &mut back);
        assert_eq!(back, data);
        // Reads of untouched memory fill with zero, not stale bytes.
        let mut cold = vec![0xFF; 9];
        m.read_slice(0x7777_0000, &mut cold);
        assert!(cold.iter().all(|b| *b == 0));
    }

    #[test]
    fn clear_resets_to_zero() {
        let mut m = MainMemory::new();
        m.write_u32(0x10, 0xDEAD_BEEF);
        assert_eq!(m.resident_pages(), 1);
        m.clear();
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.read_u32(0x10), 0);
    }

    #[test]
    fn overwrite() {
        let mut m = MainMemory::new();
        m.write_u32(0x10, 1);
        m.write_u32(0x10, 2);
        assert_eq!(m.read_u32(0x10), 2);
    }

    #[test]
    fn slice_access_wraps_at_address_space_top() {
        // A slice spanning u64::MAX must wrap to address 0, matching
        // the per-byte path, instead of overflowing `addr + done`.
        let mut m = MainMemory::new();
        let base = u64::MAX - 3; // 4 bytes at the top, rest wraps to 0..
        let data: Vec<u8> = (1..=9u8).collect();
        m.write_slice(base, &data);
        for (i, b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(base.wrapping_add(i as u64)), *b, "byte {i}");
        }
        assert_eq!(m.read_u8(0), 5); // fifth byte landed at address 0
        let mut back = vec![0u8; data.len()];
        m.read_slice(base, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn per_byte_fallback_wraps_at_address_space_top() {
        let mut m = MainMemory::new();
        let base = u64::MAX - 2; // u64 access: 3 bytes at top, 5 wrapped
        m.write_u64(base, 0x0807_0605_0403_0201);
        assert_eq!(m.read_u64(base), 0x0807_0605_0403_0201);
        assert_eq!(m.read_u8(u64::MAX), 0x03);
        assert_eq!(m.read_u8(1), 0x05);
    }

    #[test]
    fn slice_write_matches_per_byte_write_near_top() {
        for k in [0u64, 1, 3, 7, 15] {
            let base = u64::MAX - k;
            let data: Vec<u8> = (0..32u8)
                .map(|i| i.wrapping_mul(11).wrapping_add(3))
                .collect();
            let mut bulk = MainMemory::new();
            bulk.write_slice(base, &data);
            let mut bytewise = MainMemory::new();
            for (i, b) in data.iter().enumerate() {
                bytewise.write_u8(base.wrapping_add(i as u64), *b);
            }
            for i in 0..data.len() {
                let a = base.wrapping_add(i as u64);
                assert_eq!(bulk.read_u8(a), bytewise.read_u8(a), "k={k} byte {i}");
            }
        }
    }

    #[test]
    fn touch_tracking_records_written_pages_sorted() {
        let mut m = MainMemory::new();
        m.write_u32(0x1000, 7); // before tracking: not recorded
        m.start_touch_tracking();
        m.write_u8(0x5001, 1);
        m.write_u32(0x2FFE, 0xAABB_CCDD); // straddles pages 2 and 3
        m.write_slice(0x8FF0, &[9u8; 0x30]); // straddles pages 8 and 9
        let touched = m.take_touched_pages();
        assert_eq!(touched, vec![2, 3, 5, 8, 9]);
        // Drained: a second take without new writes is empty.
        assert!(m.take_touched_pages().is_empty());
        m.write_u8(0x7000, 1);
        assert_eq!(m.take_touched_pages(), vec![7]);
        m.stop_touch_tracking();
        m.write_u8(0x9000, 1);
        assert!(m.take_touched_pages().is_empty());
    }

    #[test]
    fn capture_and_apply_delta_roundtrip() {
        let mut m = MainMemory::new();
        m.write_u32(0x1000, 0x1111_1111);
        m.write_u32(0x2000, 0x2222_2222);
        // Capture page 1 (resident) and page 5 (never written → zeros).
        let delta = m.capture_pages(&[1, 5]);
        assert_eq!(delta.len(), 2);
        assert_eq!(delta.bytes(), 2 * 4096);
        // Mutate after the capture; applying must restore the snapshot.
        m.write_u32(0x1000, 0xDEAD_BEEF);
        m.write_u32(0x5000, 0x5555_5555);
        let mut fresh = MainMemory::new();
        fresh.write_u32(0x5008, 0x7777_7777); // stale byte the delta must clobber
        fresh.apply_delta(&delta);
        assert_eq!(fresh.read_u32(0x1000), 0x1111_1111);
        assert_eq!(fresh.read_u32(0x5000), 0);
        assert_eq!(fresh.read_u32(0x5008), 0); // zero page overwrote stale data
        assert_eq!(fresh.read_u32(0x2000), 0); // page 2 was not captured
    }

    #[test]
    fn apply_delta_marks_pages_touched() {
        let mut src = MainMemory::new();
        src.write_u8(0x3000, 9);
        let delta = src.capture_pages(&[3]);
        let mut dst = MainMemory::new();
        dst.start_touch_tracking();
        dst.apply_delta(&delta);
        assert_eq!(dst.take_touched_pages(), vec![3]);
    }
}
