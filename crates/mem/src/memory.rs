//! Sparse, page-based main-memory backing store (functional state).

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Byte-addressable simulated memory, allocated lazily in 4 KiB pages.
///
/// Unwritten bytes read as zero, like freshly-mapped anonymous memory.
/// All multi-byte accessors are little-endian (RISC-V's byte order).
///
/// # Example
///
/// ```
/// use indexmac_mem::MainMemory;
///
/// let mut m = MainMemory::new();
/// m.write_u32(0x2000, 0xDEADBEEF);
/// assert_eq!(m.read_u32(0x2000), 0xDEADBEEF);
/// assert_eq!(m.read_u32(0x9999_0000), 0); // untouched memory is zero
/// ```
#[derive(Debug, Default, Clone)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB pages that have been touched by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` bytes starting at `addr` (little-endian callers below).
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: whole access inside one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE {
            if let Some(p) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&p[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Drops every resident page, returning the memory to its
    /// freshly-constructed all-zero state. The page table's allocation
    /// is retained, so a reused simulator does not rebuild the map from
    /// scratch on every run (the warm-execution path resets memory once
    /// per experiment cell).
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    /// Bulk-reads `out.len()` bytes starting at `addr`, page-chunked:
    /// one page-table lookup per 4 KiB instead of one per byte, which is
    /// what makes whole-register vector loads cheap in the decoded
    /// engine. Unwritten bytes read as zero.
    pub fn read_slice(&self, addr: u64, out: &mut [u8]) {
        let mut done = 0usize;
        while done < out.len() {
            let a = addr + done as u64;
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(out.len() - done);
            match self.pages.get(&(a >> PAGE_SHIFT)) {
                Some(p) => out[done..done + n].copy_from_slice(&p[off..off + n]),
                None => out[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Bulk-writes `data` starting at `addr`, page-chunked (the store
    /// counterpart of [`MainMemory::read_slice`]).
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr + done as u64;
            let off = (a & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(data.len() - done);
            let page = self
                .pages
                .entry(a >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `f32` (IEEE-754 bits at `addr`).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Bulk-writes a slice of `f32` values at consecutive addresses.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + (i * 4) as u64, *v);
        }
    }

    /// Bulk-reads `count` `f32` values from consecutive addresses.
    pub fn read_f32_slice(&self, addr: u64, count: usize) -> Vec<f32> {
        (0..count)
            .map(|i| self.read_f32(addr + (i * 4) as u64))
            .collect()
    }

    /// Bulk-writes a slice of `u32` values at consecutive addresses.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + (i * 4) as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_untouched() {
        let m = MainMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xFFFF_FFFF_FFF0), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn byte_roundtrip() {
        let mut m = MainMemory::new();
        m.write_u8(5, 0xAB);
        assert_eq!(m.read_u8(5), 0xAB);
        assert_eq!(m.read_u8(6), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn word_roundtrips_little_endian() {
        let mut m = MainMemory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 0x01);
        assert_eq!(m.read_u8(0x103), 0x04);
        assert_eq!(m.read_u16(0x100), 0x0201);
        m.write_u64(0x200, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(0x200), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u32(0x204), 0x1122_3344);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MainMemory::new();
        let addr = (1 << PAGE_SHIFT) - 2; // straddles the page boundary
        m.write_u32(addr, 0xCAFEBABE);
        assert_eq!(m.read_u32(addr), 0xCAFEBABE);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f32_roundtrip_including_specials() {
        let mut m = MainMemory::new();
        for (i, v) in [
            0.0f32,
            -0.0,
            1.5,
            -3.25e10,
            f32::INFINITY,
            f32::MIN_POSITIVE,
        ]
        .iter()
        .enumerate()
        {
            let a = 0x3000 + (i * 4) as u64;
            m.write_f32(a, *v);
            assert_eq!(m.read_f32(a).to_bits(), v.to_bits());
        }
        m.write_f32(0x4000, f32::NAN);
        assert!(m.read_f32(0x4000).is_nan());
    }

    #[test]
    fn slice_helpers() {
        let mut m = MainMemory::new();
        let vals = [1.0f32, 2.0, 3.0, 4.5];
        m.write_f32_slice(0x8000, &vals);
        assert_eq!(m.read_f32_slice(0x8000, 4), vals);
        m.write_u32_slice(0x9000, &[7, 8, 9]);
        assert_eq!(m.read_u32(0x9008), 9);
    }

    #[test]
    fn slice_reads_and_writes_cross_pages_and_match_bytes() {
        let mut m = MainMemory::new();
        let base = (1u64 << PAGE_SHIFT) - 7; // straddles a page boundary
        let data: Vec<u8> = (0..23u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(5))
            .collect();
        m.write_slice(base, &data);
        for (i, b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(base + i as u64), *b, "byte {i}");
        }
        let mut back = vec![0xAA; data.len()];
        m.read_slice(base, &mut back);
        assert_eq!(back, data);
        // Reads of untouched memory fill with zero, not stale bytes.
        let mut cold = vec![0xFF; 9];
        m.read_slice(0x7777_0000, &mut cold);
        assert!(cold.iter().all(|b| *b == 0));
    }

    #[test]
    fn clear_resets_to_zero() {
        let mut m = MainMemory::new();
        m.write_u32(0x10, 0xDEAD_BEEF);
        assert_eq!(m.resident_pages(), 1);
        m.clear();
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.read_u32(0x10), 0);
    }

    #[test]
    fn overwrite() {
        let mut m = MainMemory::new();
        m.write_u32(0x10, 1);
        m.write_u32(0x10, 2);
        assert_eq!(m.read_u32(0x10), 2);
    }
}
