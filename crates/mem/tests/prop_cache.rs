//! Property tests of the cache and DRAM models.

use indexmac_mem::{AccessKind, Cache, CacheConfig, DramConfig, DramModel};
use proptest::prelude::*;

fn small_cache_cfg() -> impl Strategy<Value = CacheConfig> {
    // sets in {1,2,4,8,16}, ways 1..4, line 32/64.
    (0u32..5, 1usize..5, prop_oneof![Just(32usize), Just(64)]).prop_map(|(s, ways, line)| {
        let sets = 1usize << s;
        CacheConfig {
            size_bytes: sets * ways * line,
            ways,
            line_bytes: line,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Counters are consistent and occupancy never exceeds capacity.
    #[test]
    fn counters_and_occupancy(
        cfg in small_cache_cfg(),
        addrs in prop::collection::vec(0u64..0x4000, 1..300),
        writes in prop::collection::vec(any::<bool>(), 300),
    ) {
        let mut c = Cache::new(cfg);
        let capacity = cfg.sets() * cfg.ways;
        for (i, addr) in addrs.iter().enumerate() {
            let kind = if writes[i % writes.len()] { AccessKind::Write } else { AccessKind::Read };
            c.access(*addr, kind);
            prop_assert!(c.valid_lines() <= capacity);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.evictions >= s.writebacks);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }

    /// A working set that fits the cache hits 100% after one warm pass.
    #[test]
    fn resident_working_set_always_hits(
        cfg in small_cache_cfg(),
        seed in 0u64..1000,
    ) {
        let mut c = Cache::new(cfg);
        let lines = (cfg.sets() * cfg.ways).min(64);
        let base = (seed % 16) * 0x1000;
        let addrs: Vec<u64> =
            (0..lines as u64).map(|i| base + i * cfg.line_bytes as u64).collect();
        for a in &addrs {
            c.access(*a, AccessKind::Read);
        }
        let warm = c.stats();
        for a in &addrs {
            prop_assert!(c.access(*a, AccessKind::Read).hit, "warm miss at {a:#x}");
        }
        prop_assert_eq!(c.stats().hits, warm.hits + addrs.len() as u64);
    }

    /// Accesses within one line after the first never miss.
    #[test]
    fn same_line_locality(
        cfg in small_cache_cfg(),
        base in 0u64..0x10000,
        offsets in prop::collection::vec(0u64..32, 1..20),
    ) {
        let mut c = Cache::new(cfg);
        let line = base & !(cfg.line_bytes as u64 - 1);
        c.access(line, AccessKind::Read);
        for off in offsets {
            prop_assert!(c.access(line + off % cfg.line_bytes as u64, AccessKind::Read).hit);
        }
    }

    /// Probe never changes behaviour.
    #[test]
    fn probe_is_pure(
        cfg in small_cache_cfg(),
        addrs in prop::collection::vec(0u64..0x4000, 1..100),
    ) {
        let mut with_probe = Cache::new(cfg);
        let mut without = Cache::new(cfg);
        for a in &addrs {
            let _ = with_probe.probe(*a);
            let _ = with_probe.probe(a ^ 0xFFF);
            let r1 = with_probe.access(*a, AccessKind::Read);
            let r2 = without.access(*a, AccessKind::Read);
            prop_assert_eq!(r1, r2);
        }
        prop_assert_eq!(with_probe.stats(), without.stats());
    }

    /// DRAM completions are monotone in request order and respect the
    /// bandwidth gate.
    #[test]
    fn dram_monotone_and_bandwidth_limited(
        times in prop::collection::vec(0u64..10_000, 2..100),
        latency in 10u64..200,
        gap in 1u64..20,
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut d = DramModel::new(DramConfig { latency, cycles_per_line: gap });
        let mut prev = 0u64;
        for (i, t) in sorted.iter().enumerate() {
            let done = d.access(*t);
            prop_assert!(done >= t + latency);
            if i > 0 {
                prop_assert!(done >= prev + gap, "bandwidth gate violated");
            }
            prev = done;
        }
        prop_assert_eq!(d.lines_served(), sorted.len() as u64);
    }
}
